package engine

// This file implements the per-statement memory accountant behind
// DB.SetMemoryLimit: pipeline breakers (sort buffers, group hash tables,
// join builds, distinct sets) charge their retained state at batch
// granularity and consult over() to decide when to overflow to disk
// (spill.go). The default is unlimited: an exec created without a limit
// carries a nil accountant, every charge site is a nil-receiver no-op, and
// the hot path allocates nothing new.
//
// The accounting unit is the logical tuple footprint (rowBytes): the size a
// retained row would occupy if it owned its values outright. Rows shared
// with a table heap or a join chunk are over-counted by design — charging
// the shared reference at full width makes breakers spill earlier, never
// later, so the reported PeakMemBytes is a conservative ceiling on
// statement-retained state. Transient per-batch scratch (vector stack,
// ≤1024-row windows, sort permutations) is not charged; it is the "one
// batch of slack" the peak-bound tests allow.

import (
	"fmt"
	"os"
	"strconv"
	"strings"
	"sync/atomic"

	"mtbase/internal/sqltypes"
)

// memAccountant tracks the retained bytes of one statement's pipeline
// breakers against a fixed limit. All methods are safe on a nil receiver
// (the unlimited default) and safe for concurrent use: parallel workers
// share the statement's accountant, so per-worker charges fold into one
// budget.
type memAccountant struct {
	limit int64
	used  int64 // atomic
	db    *DB   // for the PeakMemBytes counter
}

// charge adds n bytes to the statement's footprint and folds the new total
// into Stats.PeakMemBytes.
func (a *memAccountant) charge(n int64) {
	if a == nil || n == 0 {
		return
	}
	used := atomic.AddInt64(&a.used, n)
	st := &a.db.Stats
	for {
		peak := atomic.LoadInt64(&st.PeakMemBytes)
		if used <= peak || atomic.CompareAndSwapInt64(&st.PeakMemBytes, peak, used) {
			return
		}
	}
}

// release returns n bytes to the budget (state was spilled or dropped).
func (a *memAccountant) release(n int64) {
	if a == nil || n == 0 {
		return
	}
	atomic.AddInt64(&a.used, -n)
}

// over reports whether the statement's retained state exceeds the limit.
// Breakers poll it once per input batch, so an overshoot is bounded by one
// batch of rows before the spill path engages.
func (a *memAccountant) over() bool {
	return a != nil && atomic.LoadInt64(&a.used) > a.limit
}

// valueSize is the in-memory size of one sqltypes.Value struct (kind,
// int64, float64, string header on a 64-bit platform).
const valueSize = 40

// rowRefBytes is the footprint of retaining a reference to an existing row
// (slice header + pointer slot in the retaining structure).
const rowRefBytes = 24

// rowBytes is the logical footprint of one row: slice header plus the
// fixed-size Value structs plus owned string payloads.
func rowBytes(row []sqltypes.Value) int64 {
	n := int64(rowRefBytes) + valueSize*int64(len(row))
	for i := range row {
		n += int64(len(row[i].S))
	}
	return n
}

// groupEntryBytes approximates the per-group overhead of the group hash
// table beyond key bytes and member rows (map bucket share, rowGroup
// header, order slot).
const groupEntryBytes = 96

// rankEntryBytes approximates one entry of the persistent group-rank
// directory a spilling group-by keeps resident.
const rankEntryBytes = 48

// recCost is the charge for one buffered spill record: the row footprint
// plus any ORDER BY key values travelling with it.
func recCost(row, keys []sqltypes.Value) int64 {
	n := rowBytes(row)
	for i := range keys {
		n += valueSize + int64(len(keys[i].S))
	}
	return n
}

// keyRow gathers row i's values from per-column key slices into one
// per-row slice of width nk.
func keyRow(keyCols [][]sqltypes.Value, i int32, nk int) []sqltypes.Value {
	if nk == 0 {
		return nil
	}
	ks := make([]sqltypes.Value, nk)
	for k := range ks {
		ks[k] = keyCols[k][i]
	}
	return ks
}

// SetMemoryLimit caps the memory one statement's pipeline breakers may
// retain before overflowing to temporary spill files. bytes <= 0 restores
// the default (unlimited, no accounting overhead). Results are identical at
// every setting — spilled runs merge back in the exact order the in-memory
// structures would have produced. See also SetSpillDir and the SpillRuns /
// SpillBytes / PeakMemBytes counters in Stats.
func (db *DB) SetMemoryLimit(bytes int64) {
	db.mu.Lock()
	defer db.mu.Unlock()
	if bytes < 0 {
		bytes = 0
	}
	db.memLimit = bytes
}

// SetSpillDir sets the directory spill files are created in. The empty
// default uses the system temp directory.
func (db *DB) SetSpillDir(dir string) {
	db.mu.Lock()
	defer db.mu.Unlock()
	db.spillDir = dir
}

// ParseMemLimit parses a human-friendly memory limit: a plain byte count or
// a number with a KB/MB/GB suffix (decimal, case-insensitive), e.g. "64KB",
// "1MB", "1048576". It powers the MTBASE_TEST_MEMLIMIT environment override
// and the mtbench -memlimit flag.
func ParseMemLimit(s string) (int64, error) {
	t := strings.TrimSpace(strings.ToUpper(s))
	if t == "" {
		return 0, fmt.Errorf("engine: empty memory limit")
	}
	mult := int64(1)
	switch {
	case strings.HasSuffix(t, "KB"):
		mult, t = 1<<10, t[:len(t)-2]
	case strings.HasSuffix(t, "MB"):
		mult, t = 1<<20, t[:len(t)-2]
	case strings.HasSuffix(t, "GB"):
		mult, t = 1<<30, t[:len(t)-2]
	case strings.HasSuffix(t, "B"):
		t = t[:len(t)-1]
	}
	n, err := strconv.ParseInt(strings.TrimSpace(t), 10, 64)
	if err != nil || n < 0 {
		return 0, fmt.Errorf("engine: bad memory limit %q", s)
	}
	return n * mult, nil
}

// applyEnvMemLimit applies the MTBASE_TEST_MEMLIMIT override, letting the
// whole test suite run memory-capped without touching call sites. Invalid
// values are ignored: a typo must not silently change what a CI leg tests,
// so Open panics instead.
func (db *DB) applyEnvMemLimit() {
	s := os.Getenv("MTBASE_TEST_MEMLIMIT")
	if s == "" {
		return
	}
	n, err := ParseMemLimit(s)
	if err != nil {
		panic(err)
	}
	db.memLimit = n
}
