package engine

// This file implements morsel-driven intra-query parallelism (ADR-005).
// Scans split the pinned table heap into morsels — batch-aligned contiguous
// row ranges — assigned to a bounded worker pool by static striping: worker
// w owns morsels w, w+par, w+2·par, … (see parallelFor for why striping
// beats dynamic claiming here). Each worker owns a workerClone of the
// statement's exec — private caches, scratch stack and compiled programs —
// and shares only immutable statement state: the plan, the pinned catalog
// and heap snapshots, the bind values.
//
// Determinism discipline: morsels partition the heap in row order and all
// merges fold per-morsel results back in morsel order, so every parallel
// path produces byte-identical output to the serial one (parallelism 1 is
// the differential oracle):
//   - aggregate columns are computed per-morsel, then folded serially in
//     row order — float sums see the same addition order, DISTINCT sets and
//     MIN/MAX ties resolve identically;
//   - filters emit survivors in morsel order, matching the serial stream;
//   - join builds encode keys per-morsel and insert serially in row order,
//     so hash buckets keep build insertion order;
//   - sorts stable-sort per-morsel runs and k-way merge with the earlier
//     run winning ties, which is equivalent to one global stable sort.
// Error parity: each worker walks its stripe in increasing morsel order and
// stops once its next morsel is at or past the lowest failing index seen so
// far (parallelFor's minFail protocol), so the surfaced error is always the
// one the serial path would have hit first (lowest failing morsel, first
// failing batch within it).
//
// Group-by bucketing stays serial by design: bucket assignment is a cheap
// hash per row, first-seen group order is part of the engine's output
// contract, and the expensive part of grouped queries — evaluating
// aggregate argument expressions, conversion UDFs included — parallelizes
// inside each group through parallelAggColumn instead.

import (
	"sync"
	"sync/atomic"

	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// morselSize is the number of rows one worker claims at a time. It is a
// multiple of batchSize so parallel workers see exactly the batch
// boundaries the serial path would, which keeps error reporting and scratch
// behaviour aligned. Package-level and atomic: tests shrink it to force
// parallel paths on small tables.
var morselSize int64 = 4 * batchSize

func morselLen() int { return int(atomic.LoadInt64(&morselSize)) }

// SetMorselSize overrides the scheduling granule (rows per morsel), rounded
// up to a whole number of batches; n <= 0 restores the default. Parallel
// paths engage only for inputs of at least two morsels, so lowering this
// lets tests exercise them on small heaps.
func SetMorselSize(n int) {
	if n <= 0 {
		atomic.StoreInt64(&morselSize, 4*batchSize)
		return
	}
	if n < batchSize {
		n = batchSize
	}
	n = (n + batchSize - 1) / batchSize * batchSize
	atomic.StoreInt64(&morselSize, int64(n))
}

// parallelFor runs fn(worker, item) for every item in [0, n) on up to par
// goroutines. Assignment is striped: worker w processes items w, w+par,
// w+2·par, … in increasing order. The static stripe — rather than dynamic
// claiming — is deliberate: a statement runs many parallel sections over
// the same heap (one per aggregate column, scan, join build), and striping
// sends the same rows to the same worker every time, so per-worker memo
// caches (conversion-UDF results above all) hit across sections instead of
// every worker redundantly computing every distinct value. Morsel work is
// uniform per row, so stealing would buy little against that cache loss.
//
// Error protocol: minFail tracks the lowest failing item index. Workers
// process their stripe in increasing order and stop once their next item is
// at or past minFail, so when parallelFor returns, every item below the
// final minFail has fully completed — the returned error is exactly the one
// a serial in-order loop would have surfaced first.
func parallelFor(par, n int, fn func(worker, item int) error) error {
	if n <= 0 {
		return nil
	}
	if par > n {
		par = n
	}
	if par <= 1 {
		for i := 0; i < n; i++ {
			if err := fn(0, i); err != nil {
				return err
			}
		}
		return nil
	}
	minFail := int64(n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for w := 0; w < par; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += par {
				if int64(i) >= atomic.LoadInt64(&minFail) {
					return
				}
				if err := fn(w, i); err != nil {
					errs[i] = err
					for {
						m := atomic.LoadInt64(&minFail)
						if int64(i) >= m || atomic.CompareAndSwapInt64(&minFail, m, int64(i)) {
							break
						}
					}
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if m := atomic.LoadInt64(&minFail); m < int64(n) {
		return errs[m]
	}
	return nil
}

// workerPool lazily materializes one workerClone per pool slot; workers are
// only built for slots that actually claim work. The pool lives on the exec
// (ex.workerPool) for the whole statement, so worker-owned caches —
// compiled UDF projections, scratch stacks, entry memos — persist across
// parallel sections instead of being rebuilt per operator.
type workerPool struct {
	ex      *exec
	workers []*exec
}

// workerPool returns the statement's persistent pool. Parallel sections run
// one at a time within a statement (the consumer pulls batches serially and
// each section blocks until its parallelFor returns), so reusing the same
// workers across sections never overlaps two users of one clone.
func (ex *exec) workerPool() *workerPool {
	if ex.pool == nil {
		ex.pool = &workerPool{ex: ex, workers: make([]*exec, ex.par)}
	}
	return ex.pool
}

func (p *workerPool) worker(w int) *exec {
	if p.workers[w] == nil {
		p.workers[w] = p.ex.workerClone()
	}
	return p.workers[w]
}

// ---------------------------------------------------------------- aggregate

// parallelAggColumn evaluates one aggregate argument expression for every
// row of a group, morsel-parallel: workers fill disjoint ranges of one
// output column, each through its own compiled program (or interpreter when
// compilation is off — same per-mode semantics as the serial branches of
// evalAggregate). The caller folds the column serially in row order.
func (ex *exec) parallelAggColumn(arg sqlast.Expr, sc *scope, rows [][]sqltypes.Value) ([]sqltypes.Value, error) {
	morsel := morselLen()
	n := len(rows)
	nm := (n + morsel - 1) / morsel
	col := make([]sqltypes.Value, n)
	pool := ex.workerPool()
	type wstate struct {
		prog vecExpr
		sc   *scope
	}
	states := make([]*wstate, ex.par)
	err := parallelFor(ex.par, nm, func(w, m int) error {
		we := pool.worker(w)
		ws := states[w]
		if ws == nil {
			wsc := &scope{parent: sc.parent, bindings: sc.bindings}
			ws = &wstate{sc: wsc, prog: we.vecCompile(arg, sc.bindings, wsc)}
			states[w] = ws
		}
		lo := m * morsel
		hi := lo + morsel
		if hi > n {
			hi = n
		}
		if ws.prog != nil {
			src := scanOp{rows: rows[lo:hi]}
			var b Batch
			for src.next(&b) {
				if err := we.cancelled(); err != nil {
					return err
				}
				out := col[lo+b.base : lo+b.base+len(b.rows)]
				ws.prog(&b, b.sel, out)
				if err := b.firstErr(); err != nil {
					return err
				}
			}
			return nil
		}
		for i := lo; i < hi; i++ {
			if i%batchSize == 0 {
				if err := we.cancelled(); err != nil {
					return err
				}
			}
			ws.sc.row = rows[i]
			v, err := we.eval(arg, ws.sc)
			if err != nil {
				return err
			}
			col[i] = v
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return col, nil
}

// ---------------------------------------------------------------- scan+filter

// parallelScanFilter is the fused morsel-parallel scan+filter operator: it
// replaces the scanOperator→filterOperator pair over a base-table heap when
// the execution runs parallel. Open fans the morsels out to the pool — each
// worker filters its morsels with privately compiled conjunct programs —
// and Next streams the surviving rows in heap order.
//
// On a poisoned row the serial pipeline emits every batch before the
// failing one and then surfaces the row's error; this operator reproduces
// that: survivors of morsels (and batches within the failing morsel) ahead
// of the first error are emitted, then Next returns the same error.
type parallelScanFilter struct {
	ex     *exec
	rows   [][]sqltypes.Value
	rel    *relation
	conjs  []sqlast.Expr
	parent *scope

	kept [][]sqltypes.Value
	err  error
	pos  int
	out  Batch

	// Memory-limited statements: the retained survivor references are
	// charged against the shared statement budget (workers fold into one
	// accountant via workerClone), so parallel execution observes the same
	// limit as serial — spills themselves only happen in serial breaker
	// code, which keeps every parallelism setting byte-identical.
	acct    *memAccountant
	charged int64
}

func newParallelScanFilter(ex *exec, rows [][]sqltypes.Value, rel *relation, conjs []*conjunct, parent *scope) *parallelScanFilter {
	exprs := make([]sqlast.Expr, len(conjs))
	for i, c := range conjs {
		exprs[i] = c.expr
	}
	return &parallelScanFilter{ex: ex, rows: rows, rel: rel, conjs: exprs, parent: parent}
}

func (o *parallelScanFilter) Open(ex *exec) error {
	morsel := morselLen()
	n := len(o.rows)
	nm := (n + morsel - 1) / morsel
	outs := make([][][]sqltypes.Value, nm)
	merrs := make([]error, nm)
	pool := o.ex.workerPool()
	type wstate struct {
		sc    *scope
		progs []vecExpr
	}
	states := make([]*wstate, o.ex.par)
	parallelFor(o.ex.par, nm, func(w, m int) error {
		we := pool.worker(w)
		ws := states[w]
		if ws == nil {
			ws = &wstate{sc: o.rel.scopeFor(o.parent)}
			if !we.db.noCompile {
				ws.progs = make([]vecExpr, len(o.conjs))
				for i, e := range o.conjs {
					ws.progs[i] = we.vecCompile(e, o.rel.bindings, ws.sc)
				}
			}
			states[w] = ws
		}
		lo := m * morsel
		hi := lo + morsel
		if hi > n {
			hi = n
		}
		f := &filterOp{src: &scanOp{rows: o.rows[lo:hi]}, ex: we, sc: ws.sc}
		if ws.progs != nil {
			f.progs = ws.progs
		} else {
			f.exprs = o.conjs
		}
		var b Batch
		var kept [][]sqltypes.Value
		for f.next(&b) {
			if err := we.cancelled(); err != nil {
				merrs[m] = err
				return err
			}
			for _, i := range b.sel {
				kept = append(kept, b.rows[i])
			}
		}
		outs[m] = kept // survivors ahead of a failing batch still emit
		if f.failed != nil {
			merrs[m] = f.failed
			return f.failed
		}
		return nil
	})
	for m := 0; m < nm; m++ {
		o.kept = append(o.kept, outs[m]...)
		if merrs[m] != nil {
			o.err = merrs[m]
			break
		}
	}
	if ex.acct != nil {
		o.acct = ex.acct
		o.charged = int64(len(o.kept)) * rowRefBytes
		ex.acct.charge(o.charged)
	}
	o.pos = 0
	return nil
}

func (o *parallelScanFilter) Next(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if o.pos >= len(o.kept) {
		return nil, o.err
	}
	n := len(o.kept) - o.pos
	if n > batchSize {
		n = batchSize
	}
	o.out.window(o.kept[o.pos : o.pos+n])
	o.pos += n
	ex.noteStream(n)
	return &o.out, nil
}

func (o *parallelScanFilter) Close() {
	o.kept = nil
	o.err = nil
	o.acct.release(o.charged)
	o.charged = 0
}

// ---------------------------------------------------------------- join build

// parallelJoinKeys encodes the build-side join keys of rows morsel-parallel:
// workers fill disjoint ranges of one key column (nil = NULL key, dropped
// from equi joins), each with privately compiled key programs. The caller
// inserts into the hash map serially in row order, so bucket contents and
// order are identical to the serial build.
func (ex *exec) parallelJoinKeys(r *relation, pairs []equiPair, parent *scope) ([][]byte, error) {
	morsel := morselLen()
	n := len(r.rows)
	nm := (n + morsel - 1) / morsel
	keys := make([][]byte, n)
	pool := ex.workerPool()
	type wstate struct {
		sc  *scope
		rks *vecKeySet
	}
	states := make([]*wstate, ex.par)
	err := parallelFor(ex.par, nm, func(w, m int) error {
		we := pool.worker(w)
		ws := states[w]
		if ws == nil {
			wsc := r.scopeFor(parent)
			ws = &wstate{sc: wsc, rks: we.vecKeys(pairExprs(pairs, true), r.bindings, wsc)}
			states[w] = ws
		}
		lo := m * morsel
		hi := lo + morsel
		if hi > n {
			hi = n
		}
		src := scanOp{rows: r.rows[lo:hi]}
		var b Batch
		for src.next(&b) {
			if err := we.cancelled(); err != nil {
				return err
			}
			mk := we.vs.mark()
			sel := ws.rks.compute(&b, true, nil)
			if err := b.firstErr(); err != nil {
				return err
			}
			for _, i := range sel {
				buf := encodeKeyCols(nil, ws.rks.cols, i)
				keys[lo+b.base+int(i)] = buf
			}
			we.vs.release(mk)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return keys, nil
}

// ---------------------------------------------------------------- sort

// parallelSortIdx stable-sorts idx like stableSortIdx, but parallel: the
// index splits into contiguous runs, workers stable-sort the runs
// independently, and a k-way merge picks the smallest head — the earliest
// run winning ties — which is order-equivalent to one global stable sort.
func parallelSortIdx(par int, idx []int32, less func(a, b int32) bool) {
	n := len(idx)
	runLen := (n + par - 1) / par
	if runLen < batchSize {
		runLen = batchSize
	}
	nr := (n + runLen - 1) / runLen
	if nr < 2 {
		stableSortIdx(idx, less)
		return
	}
	bounds := make([][2]int, nr)
	for r := 0; r < nr; r++ {
		lo := r * runLen
		hi := lo + runLen
		if hi > n {
			hi = n
		}
		bounds[r] = [2]int{lo, hi}
	}
	parallelFor(par, nr, func(_, r int) error {
		stableSortIdx(idx[bounds[r][0]:bounds[r][1]], less)
		return nil
	})
	out := make([]int32, 0, n)
	heads := make([]int, nr)
	for r := range heads {
		heads[r] = bounds[r][0]
	}
	for len(out) < n {
		best := -1
		for r := 0; r < nr; r++ {
			if heads[r] >= bounds[r][1] {
				continue
			}
			if best < 0 || less(idx[heads[r]], idx[heads[best]]) {
				best = r
			}
		}
		out = append(out, idx[heads[best]])
		heads[best]++
	}
	copy(idx, out)
}
