package optimizer

import (
	"fmt"
	"strings"

	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
)

// applyO4 performs conversion-function inlining (§4.2.3, Listing 17):
// calls to SQL-bodied UDFs are replaced by the body's select expression,
// with the body's meta tables joined into the query's FROM clause and the
// body's predicates conjoined to WHERE. This turns a per-row interpreted
// function call into plain joins + arithmetic, which the DBMS optimizes
// aggressively — the paper's single most effective pass on System C.
func applyO4(ctx *rewrite.Context, q *sqlast.Select) {
	inl := &inliner{ctx: ctx}
	eachSelect(q, func(s *sqlast.Select) {
		inl.level(s)
	})
}

type inliner struct {
	ctx    *rewrite.Context
	nextID int
}

// inlineSite records the instantiation of one distinct call (fn + args).
type inlineSite struct {
	repl   sqlast.Expr
	tables []sqlast.TableExpr
	conds  []sqlast.Expr
}

func (inl *inliner) level(s *sqlast.Select) {
	sites := make(map[string]*inlineSite) // fn + rendered args -> site
	var newTables []sqlast.TableExpr
	var newConds []sqlast.Expr

	process := func(e sqlast.Expr) sqlast.Expr {
		if e == nil {
			return nil
		}
		return sqlast.TransformExpr(e, func(n sqlast.Expr) sqlast.Expr {
			fc, ok := n.(*sqlast.FuncCall)
			if !ok || fc.Star || fc.Distinct {
				return n
			}
			def := inl.ctx.Schema.Function(fc.Name)
			if def == nil || !inlinable(def) {
				return n
			}
			key := fc.String()
			site, seen := sites[key]
			if !seen {
				var ok bool
				site, ok = inl.instantiate(def, fc.Args)
				if !ok {
					return n
				}
				sites[key] = site
				newTables = append(newTables, site.tables...)
				newConds = append(newConds, site.conds...)
			}
			return sqlast.CloneExpr(site.repl)
		})
	}

	// Inlining is a cost-based decision (§4): it pays when the call would
	// execute per input row — in WHERE, in GROUP BY keys, inside aggregate
	// arguments, or anywhere in a non-grouped query. Calls in the output
	// clauses of a grouped query run once per *group* (e.g. the per-tenant
	// conversions o3 produces); joining meta tables against every input
	// row to save those few calls is a pessimization, so they stay UDFs.
	grouped := len(s.GroupBy) > 0
	if !grouped {
		for _, it := range s.Items {
			if !it.Star && hasAggregateCall(it.Expr) {
				grouped = true
				break
			}
		}
	}
	processPerRow := func(e sqlast.Expr) sqlast.Expr {
		if !grouped {
			return process(e)
		}
		return inAggregateArgs(e, process)
	}

	for i := range s.Items {
		s.Items[i].Expr = processPerRow(s.Items[i].Expr)
	}
	s.Where = process(s.Where)
	for i := range s.GroupBy {
		s.GroupBy[i] = process(s.GroupBy[i])
	}
	s.Having = processPerRow(s.Having)
	for i := range s.OrderBy {
		s.OrderBy[i].Expr = processPerRow(s.OrderBy[i].Expr)
	}

	s.From = append(s.From, newTables...)
	for _, c := range newConds {
		s.Where = sqlast.AndExprs(s.Where, c)
	}
}

func hasAggregateCall(e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if fc, ok := n.(*sqlast.FuncCall); ok && isAggregateName(fc.Name) {
			found = true
			return false
		}
		return !found
	})
	return found
}

// inAggregateArgs applies f to the argument subtrees of aggregate calls
// within e, leaving everything outside aggregates untouched.
func inAggregateArgs(e sqlast.Expr, f func(sqlast.Expr) sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	return topDownReplace(e, func(n sqlast.Expr) (sqlast.Expr, bool) {
		fc, ok := n.(*sqlast.FuncCall)
		if !ok || !isAggregateName(fc.Name) {
			return n, false
		}
		for i, a := range fc.Args {
			fc.Args[i] = f(a)
		}
		return fc, true
	})
}

// inlinable accepts bodies of the meta-lookup shape used by conversion
// functions: a single SELECT of one expression from plain tables with a
// conjunctive WHERE — the form that can be folded into an enclosing query
// as a 1:1 join.
func inlinable(def *sqlast.CreateFunction) bool {
	b := def.Body
	if b == nil || b.Distinct || len(b.Items) != 1 || b.Items[0].Star {
		return false
	}
	if len(b.GroupBy) > 0 || b.Having != nil || len(b.OrderBy) > 0 || b.Limit >= 0 {
		return false
	}
	for _, te := range b.From {
		if _, ok := te.(*sqlast.TableName); !ok {
			return false
		}
	}
	if len(sqlast.SubqueriesOf(b.Items[0].Expr)) > 0 || (b.Where != nil && len(sqlast.SubqueriesOf(b.Where)) > 0) {
		return false
	}
	return true
}

// instantiate clones the body with fresh table aliases, qualifies the
// body's column references, and substitutes $n parameters with the call
// arguments.
func (inl *inliner) instantiate(def *sqlast.CreateFunction, args []sqlast.Expr) (*inlineSite, bool) {
	if len(args) != len(def.ParamTypes) {
		return nil, false
	}
	body := sqlast.CloneSelect(def.Body)

	// Fresh alias per body table; column ownership comes from the schema.
	aliasOf := make(map[string]string) // lower table name -> alias
	colOwner := make(map[string]string)
	var tables []sqlast.TableExpr
	for _, te := range body.From {
		tn := te.(*sqlast.TableName)
		info := inl.ctx.Schema.Table(tn.Name)
		if info == nil {
			return nil, false
		}
		inl.nextID++
		alias := fmt.Sprintf("mt_inl%d", inl.nextID)
		aliasOf[strings.ToLower(tn.Binding())] = alias
		for _, c := range info.ColumnNames() {
			cl := strings.ToLower(c)
			if _, dup := colOwner[cl]; dup {
				return nil, false // ambiguous body column
			}
			colOwner[cl] = alias
		}
		tables = append(tables, &sqlast.TableName{Name: tn.Name, Alias: alias})
	}

	substitute := func(e sqlast.Expr) (sqlast.Expr, bool) {
		okAll := true
		out := sqlast.TransformExpr(e, func(n sqlast.Expr) sqlast.Expr {
			switch x := n.(type) {
			case *sqlast.Param:
				if x.N < 1 || x.N > len(args) {
					okAll = false
					return n
				}
				return sqlast.CloneExpr(args[x.N-1])
			case *sqlast.ColumnRef:
				if x.Table != "" {
					if alias, ok := aliasOf[strings.ToLower(x.Table)]; ok {
						return &sqlast.ColumnRef{Table: alias, Name: x.Name}
					}
					okAll = false
					return n
				}
				owner, ok := colOwner[strings.ToLower(x.Name)]
				if !ok {
					okAll = false
					return n
				}
				return &sqlast.ColumnRef{Table: owner, Name: x.Name}
			}
			return n
		})
		return out, okAll
	}

	repl, ok := substitute(body.Items[0].Expr)
	if !ok {
		return nil, false
	}
	site := &inlineSite{repl: repl, tables: tables}
	if body.Where != nil {
		w, ok := substitute(body.Where)
		if !ok {
			return nil, false
		}
		site.conds = conjunctsOf(w)
	}
	return site, true
}
