// Package optimizer implements the MTSQL-specific optimization passes of
// §4 of the paper, applied to the output of the canonical rewrite:
//
//	o1       trivial semantic optimizations (§4.1)
//	o2       o1 + client-presentation push-up + conversion push-up (§4.2.1)
//	o3       o2 + aggregation distribution (§4.2.2)
//	o4       o3 + conversion-function inlining (§4.2.3)
//	inl-only o1 + inlining (the ablation level of §6.3)
//
// These are optimizations a DBMS optimizer cannot do (it lacks MT-specific
// context: D, C, conversion-function algebra) or does not do.
package optimizer

import (
	"fmt"
	"strings"

	"mtbase/internal/mtsql"
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// Level selects the optimization pass stack (Table 6 of the paper).
type Level uint8

// Optimization levels.
const (
	Canonical Level = iota // no optimization
	O1
	O2
	O3
	O4
	InlOnly
)

// Levels lists all levels in evaluation order.
var Levels = []Level{Canonical, O1, O2, O3, O4, InlOnly}

func (l Level) String() string {
	switch l {
	case Canonical:
		return "canonical"
	case O1:
		return "o1"
	case O2:
		return "o2"
	case O3:
		return "o3"
	case O4:
		return "o4"
	case InlOnly:
		return "inl-only"
	}
	return fmt.Sprintf("Level(%d)", uint8(l))
}

// ParseLevel parses a level name.
func ParseLevel(s string) (Level, error) {
	for _, l := range Levels {
		if l.String() == strings.ToLower(s) {
			return l, nil
		}
	}
	return Canonical, fmt.Errorf("optimizer: unknown level %q", s)
}

// Optimize applies the pass stack for the level to a canonically rewritten
// query. The input is not modified.
func Optimize(ctx *rewrite.Context, q *sqlast.Select, level Level) (*sqlast.Select, error) {
	out := sqlast.CloneSelect(q)
	if level == Canonical {
		return out, nil
	}
	applyO1(ctx, out) // all non-canonical levels include the trivial pass
	switch level {
	case O2:
		applyO2(ctx, out)
	case O3:
		applyO2(ctx, out)
		applyO3(ctx, out)
	case O4:
		applyO2(ctx, out)
		applyO3(ctx, out)
		applyO4(ctx, out)
	case InlOnly:
		applyO4(ctx, out)
	}
	return out, nil
}

// ---------------------------------------------------------------- traversal

// eachSelect visits q and every nested subquery (derived tables, IN/EXISTS/
// scalar subqueries), innermost first.
func eachSelect(q *sqlast.Select, f func(*sqlast.Select)) {
	var visitTE func(te sqlast.TableExpr)
	visitTE = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.DerivedTable:
			eachSelect(t.Sub, f)
		case *sqlast.JoinExpr:
			visitTE(t.L)
			visitTE(t.R)
			visitExprSubs(t.On, f)
		}
	}
	for _, te := range q.From {
		visitTE(te)
	}
	for _, it := range q.Items {
		visitExprSubs(it.Expr, f)
	}
	visitExprSubs(q.Where, f)
	for _, g := range q.GroupBy {
		visitExprSubs(g, f)
	}
	visitExprSubs(q.Having, f)
	for _, o := range q.OrderBy {
		visitExprSubs(o.Expr, f)
	}
	f(q)
}

func visitExprSubs(e sqlast.Expr, f func(*sqlast.Select)) {
	if e == nil {
		return
	}
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.InExpr:
			if x.Sub != nil {
				eachSelect(x.Sub, f)
			}
		case *sqlast.ExistsExpr:
			eachSelect(x.Sub, f)
		case *sqlast.SubqueryExpr:
			eachSelect(x.Sub, f)
		}
		return true
	})
}

// ---------------------------------------------------------------- patterns

// convCall is a recognized conversion call:
//
//	full:  fromU(toU(x, ttidExpr), C)   — canonical form
//	half:  toU(x, ttidExpr)             — after client-presentation push-up
type convCall struct {
	pair     *mtsql.ConvPair
	arg      sqlast.Expr // x
	ttidExpr sqlast.Expr // owner format expression (usually B.ttid)
	full     bool        // true when wrapped in fromU(..., C)
}

// matchFullConv recognizes fromU(toU(x, t), C).
func matchFullConv(ctx *rewrite.Context, e sqlast.Expr) (*convCall, bool) {
	outer, ok := e.(*sqlast.FuncCall)
	if !ok || len(outer.Args) != 2 {
		return nil, false
	}
	pair := ctx.Schema.Convs().ByFunc(outer.Name)
	if pair == nil || !strings.EqualFold(outer.Name, pair.FromFunc) {
		return nil, false
	}
	inner, ok := outer.Args[0].(*sqlast.FuncCall)
	if !ok || len(inner.Args) != 2 || !strings.EqualFold(inner.Name, pair.ToFunc) {
		return nil, false
	}
	if lit, ok := outer.Args[1].(*sqlast.Literal); !ok || lit.Val.K != sqltypes.KindInt || lit.Val.I != ctx.C {
		return nil, false
	}
	return &convCall{pair: pair, arg: inner.Args[0], ttidExpr: inner.Args[1], full: true}, true
}

// containsConvCall reports whether any conversion call occurs in e.
func containsConvCall(ctx *rewrite.Context, e sqlast.Expr) bool {
	found := false
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if found {
			return false
		}
		if fc, ok := n.(*sqlast.FuncCall); ok && ctx.Schema.Convs().ByFunc(fc.Name) != nil {
			found = true
			return false
		}
		return true
	})
	return found
}

// isConstantExpr reports whether e is constant w.r.t. query rows: no
// column references and no subqueries.
func isConstantExpr(e sqlast.Expr) bool {
	return len(sqlast.ColumnRefsOf(e)) == 0 && len(sqlast.SubqueriesOf(e)) == 0
}

// isTTIDRef recognizes a reference to a ttid column.
func isTTIDRef(e sqlast.Expr) bool {
	cr, ok := e.(*sqlast.ColumnRef)
	return ok && strings.EqualFold(cr.Name, mtsql.TTIDColumn)
}

// replaceConjuncts rebuilds a WHERE/HAVING/ON tree keeping only conjuncts
// for which keep returns true.
func replaceConjuncts(e sqlast.Expr, keep func(sqlast.Expr) bool) sqlast.Expr {
	if e == nil {
		return nil
	}
	var out sqlast.Expr
	for _, c := range conjunctsOf(e) {
		if keep(c) {
			out = sqlast.AndExprs(out, c)
		}
	}
	return out
}

func conjunctsOf(e sqlast.Expr) []sqlast.Expr {
	if b, ok := e.(*sqlast.BinaryExpr); ok && b.Op == "AND" {
		return append(conjunctsOf(b.L), conjunctsOf(b.R)...)
	}
	return []sqlast.Expr{e}
}
