package optimizer

import (
	"mtbase/internal/mtsql"
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
)

// applyO2 performs client-presentation push-up and conversion push-up
// (§4.2.1) on every query level. Both passes trade on the algebraic
// properties of conversion pairs:
//
//   - comparison of two converted attributes: drop the shared fromU(·, C)
//     wrapper and compare in universal format (Listing 14) — sound for
//     equality on any valid pair (Corollary 1), and for ordering when the
//     pair is order-preserving;
//
//   - comparison of a converted attribute with a constant: convert the
//     constant into the attribute owner's format once per tenant instead
//     of converting the attribute per row (Listing 15). The converted
//     constant is immutable, so a caching DBMS evaluates it once per
//     tenant.
func applyO2(ctx *rewrite.Context, q *sqlast.Select) {
	eachSelect(q, func(s *sqlast.Select) {
		s.Where = pushUpPredicates(ctx, s.Where)
		s.Having = pushUpPredicates(ctx, s.Having)
		var visitTE func(te sqlast.TableExpr)
		visitTE = func(te sqlast.TableExpr) {
			if j, ok := te.(*sqlast.JoinExpr); ok {
				visitTE(j.L)
				visitTE(j.R)
				j.On = pushUpPredicates(ctx, j.On)
			}
		}
		for _, te := range s.From {
			visitTE(te)
		}
	})
}

func pushUpPredicates(ctx *rewrite.Context, e sqlast.Expr) sqlast.Expr {
	if e == nil {
		return nil
	}
	return sqlast.TransformExpr(e, func(n sqlast.Expr) sqlast.Expr {
		switch x := n.(type) {
		case *sqlast.BinaryExpr:
			return pushUpComparison(ctx, x)
		case *sqlast.BetweenExpr:
			return pushUpBetween(ctx, x)
		case *sqlast.InExpr:
			return pushUpInList(ctx, x)
		}
		return n
	})
}

// opNeedsOrder reports whether the comparison operator requires an
// order-preserving pair to commute with conversion.
func opNeedsOrder(op string) bool {
	switch op {
	case "=", "<>":
		return false
	case "<", "<=", ">", ">=":
		return true
	}
	return false
}

func isComparisonOp(op string) bool {
	switch op {
	case "=", "<>", "<", "<=", ">", ">=":
		return true
	}
	return false
}

func pushUpComparison(ctx *rewrite.Context, b *sqlast.BinaryExpr) sqlast.Expr {
	if !isComparisonOp(b.Op) {
		return b
	}
	lc, lok := matchFullConv(ctx, b.L)
	rc, rok := matchFullConv(ctx, b.R)
	switch {
	case lok && rok && lc.pair == rc.pair:
		// Client-presentation push-up: compare in universal format.
		if opNeedsOrder(b.Op) && !lc.pair.Class.AtLeast(mtsql.ClassOrderPreserving) {
			return b
		}
		b.L = toUniversalCall(lc)
		b.R = toUniversalCall(rc)
		return b
	case lok && isConstantExpr(b.R):
		if opNeedsOrder(b.Op) && !lc.pair.Class.AtLeast(mtsql.ClassOrderPreserving) {
			return b
		}
		b.L = lc.arg
		b.R = constantToTenant(ctx, lc, b.R)
		return b
	case rok && isConstantExpr(b.L):
		if opNeedsOrder(b.Op) && !rc.pair.Class.AtLeast(mtsql.ClassOrderPreserving) {
			return b
		}
		b.R = rc.arg
		b.L = constantToTenant(ctx, rc, b.L)
		return b
	}
	return b
}

func pushUpBetween(ctx *rewrite.Context, x *sqlast.BetweenExpr) sqlast.Expr {
	cc, ok := matchFullConv(ctx, x.X)
	if !ok || !cc.pair.Class.AtLeast(mtsql.ClassOrderPreserving) {
		return x
	}
	if !isConstantExpr(x.Lo) || !isConstantExpr(x.Hi) {
		return x
	}
	x.X = cc.arg
	x.Lo = constantToTenant(ctx, cc, x.Lo)
	x.Hi = constantToTenant(ctx, cc, x.Hi)
	return x
}

func pushUpInList(ctx *rewrite.Context, x *sqlast.InExpr) sqlast.Expr {
	if x.Sub != nil {
		return x
	}
	cc, ok := matchFullConv(ctx, x.X)
	if !ok {
		return x
	}
	for _, item := range x.List {
		if !isConstantExpr(item) {
			return x
		}
	}
	x.X = cc.arg
	for i, item := range x.List {
		x.List[i] = constantToTenant(ctx, cc, item)
	}
	return x
}

// toUniversalCall rebuilds toU(x, t) from a matched full conversion.
func toUniversalCall(cc *convCall) sqlast.Expr {
	return &sqlast.FuncCall{Name: cc.pair.ToFunc, Args: []sqlast.Expr{cc.arg, cc.ttidExpr}}
}

// constantToTenant builds fromU(toU(const, C), t): the C-format constant
// converted into the attribute owner's format. Both calls have immutable
// results, so a caching engine evaluates them once per tenant (§4.2.1).
func constantToTenant(ctx *rewrite.Context, cc *convCall, constant sqlast.Expr) sqlast.Expr {
	to := &sqlast.FuncCall{Name: cc.pair.ToFunc, Args: []sqlast.Expr{constant, sqlast.NewIntLit(ctx.C)}}
	return &sqlast.FuncCall{Name: cc.pair.FromFunc, Args: []sqlast.Expr{to, sqlast.CloneExpr(cc.ttidExpr)}}
}
