package optimizer

import (
	"math"
	"strings"
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/mtsql"
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// testEnv is a miniature MTBase stack over the paper's running example:
// MT schema + engine database with meta tables and conversion UDFs.
type testEnv struct {
	schema *mtsql.Schema
	db     *engine.DB
}

func newEnv(t testing.TB, mode engine.Mode) *testEnv {
	t.Helper()
	schema := mtsql.NewSchema()
	if err := schema.Convs().Register(mtsql.ConvPair{
		Name: "currency", ToFunc: "currencyToUniversal", FromFunc: "currencyFromUniversal",
		Class: mtsql.ClassLinear,
	}); err != nil {
		t.Fatal(err)
	}
	mtDDL := []string{
		`CREATE TABLE Employees SPECIFIC (
			E_emp_id INTEGER NOT NULL SPECIFIC,
			E_name VARCHAR(25) NOT NULL COMPARABLE,
			E_role_id INTEGER NOT NULL SPECIFIC,
			E_reg_id INTEGER NOT NULL COMPARABLE,
			E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
			E_age INTEGER NOT NULL COMPARABLE)`,
		`CREATE TABLE Roles SPECIFIC (
			R_role_id INTEGER NOT NULL SPECIFIC,
			R_name VARCHAR(25) NOT NULL COMPARABLE)`,
		`CREATE TABLE Regions (Re_reg_id INTEGER NOT NULL, Re_name VARCHAR(25) NOT NULL)`,
		`CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL)`,
		`CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
			CT_to_universal DECIMAL(15,2) NOT NULL, CT_from_universal DECIMAL(15,2) NOT NULL)`,
	}
	db := engine.Open(mode)
	for _, ddl := range mtDDL {
		stmt, err := sqlparse.ParseStatement(ddl)
		if err != nil {
			t.Fatalf("parse: %v", err)
		}
		ct := stmt.(*sqlast.CreateTable)
		if _, err := schema.AddTable(ct); err != nil {
			t.Fatal(err)
		}
		phys := rewrite.PhysicalCreateTable(schema, ct)
		if _, err := db.Exec(phys); err != nil {
			t.Fatal(err)
		}
	}
	script := `
INSERT INTO Employees VALUES
  (0, 0, 'Patrick', 1, 3, 50000, 30),
  (0, 1, 'John',    0, 3, 70000, 28),
  (0, 2, 'Alice',   2, 3, 150000, 46),
  (1, 0, 'Allan',   1, 2, 80000, 25),
  (1, 1, 'Nancy',   2, 4, 200000, 72),
  (1, 2, 'Ed',      0, 4, 1000000, 46);
INSERT INTO Roles VALUES
  (0, 0, 'phD stud.'), (0, 1, 'postdoc'), (0, 2, 'professor'),
  (1, 0, 'intern'), (1, 1, 'researcher'), (1, 2, 'executive');
INSERT INTO Regions VALUES (0,'AFRICA'),(1,'ASIA'),(2,'AUSTRALIA'),(3,'EUROPE'),(4,'N-AMERICA'),(5,'S-AMERICA');
INSERT INTO Tenant VALUES (0, 0), (1, 1);
INSERT INTO CurrencyTransform VALUES (0, 1.0, 1.0), (1, 1.1, 0.9090909090909091);
CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE;
CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE;
`
	if _, err := db.ExecScript(script); err != nil {
		t.Fatal(err)
	}
	// Retain function bodies for the inliner.
	for _, fn := range []string{
		`CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE`,
		`CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
  AS 'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
  LANGUAGE SQL IMMUTABLE`,
	} {
		stmt, err := sqlparse.ParseStatement(fn)
		if err != nil {
			t.Fatal(err)
		}
		schema.AddFunction(stmt.(*sqlast.CreateFunction))
	}
	return &testEnv{schema: schema, db: db}
}

func (env *testEnv) ctx(c int64, dAll bool, d ...int64) *rewrite.Context {
	return &rewrite.Context{C: c, D: d, DAll: dAll, Schema: env.schema}
}

// run rewrites, optimizes at the level and executes.
func (env *testEnv) run(t testing.TB, ctx *rewrite.Context, level Level, sql string) *engine.Result {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	rw, err := rewrite.Query(ctx, q)
	if err != nil {
		t.Fatalf("rewrite: %v", err)
	}
	opt, err := Optimize(ctx, rw, level)
	if err != nil {
		t.Fatalf("optimize(%s): %v", level, err)
	}
	// The middleware ships SQL text; round-trip to prove serializability.
	text := opt.String()
	reparsed, err := sqlparse.ParseQuery(text)
	if err != nil {
		t.Fatalf("optimized SQL does not reparse at %s: %v\n%s", level, err, text)
	}
	res, err := env.db.Query(reparsed)
	if err != nil {
		t.Fatalf("execute at %s: %v\n%s", level, err, text)
	}
	return res
}

// optimizeText returns the optimized SQL for pattern assertions.
func (env *testEnv) optimizeText(t testing.TB, ctx *rewrite.Context, level Level, sql string) string {
	t.Helper()
	q, err := sqlparse.ParseQuery(sql)
	if err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(ctx, rw, level)
	if err != nil {
		t.Fatal(err)
	}
	return opt.String()
}

func valuesEqual(a, b sqltypes.Value) bool {
	if a.IsNull() && b.IsNull() {
		return true
	}
	if a.IsNumeric() && b.IsNumeric() {
		x, y := a.AsFloat(), b.AsFloat()
		if x == y {
			return true
		}
		return math.Abs(x-y) <= 1e-6*math.Max(1, math.Max(math.Abs(x), math.Abs(y)))
	}
	eq, ok := sqltypes.Equal(a, b)
	return ok && eq
}

func resultsEqual(a, b *engine.Result) bool {
	if len(a.Rows) != len(b.Rows) {
		return false
	}
	for i := range a.Rows {
		if len(a.Rows[i]) != len(b.Rows[i]) {
			return false
		}
		for j := range a.Rows[i] {
			if !valuesEqual(a.Rows[i][j], b.Rows[i][j]) {
				return false
			}
		}
	}
	return true
}

// queriesForEquivalence exercises every optimization trigger.
var queriesForEquivalence = []string{
	"SELECT E_name, E_salary FROM Employees ORDER BY E_name",
	"SELECT AVG(E_salary) AS avg_sal FROM Employees",
	"SELECT SUM(E_salary) AS sum_sal FROM Employees",
	"SELECT MIN(E_salary) AS lo, MAX(E_salary) AS hi, COUNT(*) AS cnt FROM Employees",
	"SELECT E_reg_id, SUM(E_salary) AS s, COUNT(*) AS c FROM Employees GROUP BY E_reg_id ORDER BY E_reg_id",
	"SELECT E_name FROM Employees WHERE E_salary > 100000 ORDER BY E_name",
	"SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id ORDER BY E_name",
	"SELECT e1.E_name FROM Employees e1, Employees e2 WHERE e1.E_salary > e2.E_salary AND e2.E_name = 'Nancy'",
	"SELECT E_name FROM Employees WHERE E_role_id IN (SELECT R_role_id FROM Roles WHERE R_name = 'postdoc') ORDER BY E_name",
	"SELECT AVG(x.sal) AS a FROM (SELECT E_salary AS sal FROM Employees WHERE E_age >= 45) AS x",
	"SELECT E_reg_id, AVG(E_salary) AS a FROM Employees GROUP BY E_reg_id HAVING AVG(E_salary) > 60000 ORDER BY E_reg_id",
	"SELECT E_name FROM Employees WHERE E_salary BETWEEN 60000 AND 160000 ORDER BY E_name",
	"SELECT SUM(E_salary * 2) AS s2 FROM Employees",
	"SELECT COUNT(E_salary) AS c FROM Employees WHERE E_age > 100",
}

// TestAllLevelsAgreeWithCanonical is the §5-style validation: the
// canonical rewrite defines correctness; every optimization level must
// produce identical results (modulo float tolerance).
func TestAllLevelsAgreeWithCanonical(t *testing.T) {
	for _, mode := range []engine.Mode{engine.ModePostgres, engine.ModeSystemC} {
		env := newEnv(t, mode)
		contexts := []*rewrite.Context{
			env.ctx(0, false, 0),    // D = {C}
			env.ctx(0, false, 1),    // D = {other}
			env.ctx(1, false, 1),    // D = {C}, non-universal client
			env.ctx(0, true, 0, 1),  // D = all
			env.ctx(1, true, 0, 1),  // D = all, EUR client
			env.ctx(0, false, 0, 1), // explicit list, not flagged all
		}
		for _, ctx := range contexts {
			for _, sql := range queriesForEquivalence {
				want := env.run(t, ctx, Canonical, sql)
				for _, level := range []Level{O1, O2, O3, O4, InlOnly} {
					got := env.run(t, ctx, level, sql)
					if !resultsEqual(want, got) {
						t.Errorf("mode=%v C=%d D=%v level=%s results diverge for %q:\ncanonical: %v\n%s: %v",
							mode, ctx.C, ctx.D, level, sql, want.Rows, level, got.Rows)
					}
				}
			}
		}
	}
}

// ---------------------------------------------------------------- o1

func TestO1DropsDFilterWhenAll(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, true, 0, 1)
	got := env.optimizeText(t, ctx, O1, "SELECT E_age FROM Employees")
	if strings.Contains(got, "ttid IN") {
		t.Errorf("D-filter not dropped: %s", got)
	}
	// But with an explicit non-all scope it stays.
	ctx2 := env.ctx(0, false, 0, 1)
	got = env.optimizeText(t, ctx2, O1, "SELECT E_age FROM Employees")
	if !strings.Contains(got, "ttid IN (0, 1)") {
		t.Errorf("D-filter wrongly dropped: %s", got)
	}
}

func TestO1DropsTTIDJoinWhenSingleTenant(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, false, 2)
	got := env.optimizeText(t, ctx, O1, "SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id")
	if strings.Contains(got, "employees.ttid = roles.ttid") {
		t.Errorf("ttid join predicate not dropped: %s", got)
	}
	if !strings.Contains(got, "ttid IN (2)") {
		t.Errorf("D-filters must remain: %s", got)
	}
}

func TestO1DropsConversionsWhenDIsClient(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(1, false, 1)
	got := env.optimizeText(t, ctx, O1, "SELECT E_salary FROM Employees")
	if strings.Contains(got, "currency") {
		t.Errorf("conversions not dropped: %s", got)
	}
	// D = {other tenant}: conversions must remain.
	ctx2 := env.ctx(0, false, 1)
	got = env.optimizeText(t, ctx2, O1, "SELECT E_salary FROM Employees")
	if !strings.Contains(got, "currencyToUniversal") {
		t.Errorf("conversions wrongly dropped: %s", got)
	}
}

func TestO1SimplifiesTupleIn(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, false, 1)
	got := env.optimizeText(t, ctx, O1, "SELECT E_name FROM Employees WHERE E_role_id IN (SELECT R_role_id FROM Roles)")
	if strings.Contains(got, "(E_role_id, employees.ttid)") {
		t.Errorf("tuple IN not simplified for |D|=1: %s", got)
	}
}

// ---------------------------------------------------------------- o2

func TestO2ConvertsConstantInsteadOfAttribute(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, false, 0, 1)
	got := env.optimizeText(t, ctx, O2, "SELECT E_name FROM Employees WHERE E_salary > 100000")
	// Listing 15: the attribute is bare; the constant is converted into
	// the owner's format.
	if !strings.Contains(got, "E_salary > currencyFromUniversal(currencyToUniversal(100000, 0), employees.ttid)") {
		t.Errorf("constant push-up missing: %s", got)
	}
}

func TestO2StripsSharedClientConversion(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, false, 0, 1)
	got := env.optimizeText(t, ctx, O2,
		"SELECT e1.E_name FROM Employees e1, Employees e2 WHERE e1.E_salary > e2.E_salary")
	// Listing 14: compare in universal format, saving the fromUniversal.
	if !strings.Contains(got, "currencyToUniversal(e1.E_salary, e1.ttid) > currencyToUniversal(e2.E_salary, e2.ttid)") {
		t.Errorf("client presentation push-up missing: %s", got)
	}
}

// ---------------------------------------------------------------- o3

func TestO3DistributesSum(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, false, 0, 1)
	got := env.optimizeText(t, ctx, O3, "SELECT SUM(E_salary) AS sum_sal FROM Employees")
	// Listing 16's shape: inner per-tenant SUM converted once per tenant.
	if !strings.Contains(got, "GROUP BY employees.ttid") {
		t.Errorf("no per-tenant partial aggregation: %s", got)
	}
	if !strings.Contains(got, "currencyToUniversal(SUM(E_salary), employees.ttid)") {
		t.Errorf("partial sums not converted per tenant: %s", got)
	}
	if !strings.Contains(got, "currencyFromUniversal(SUM(") {
		t.Errorf("final conversion to client format missing: %s", got)
	}
}

func TestO3ReducesUDFCalls(t *testing.T) {
	env := newEnv(t, engine.ModeSystemC) // no caching: call counts are exact
	ctx := env.ctx(0, false, 0, 1)
	env.db.Stats = engine.Stats{}
	env.run(t, ctx, O2, "SELECT SUM(E_salary) AS s FROM Employees")
	callsO2 := env.db.Stats.UDFCalls
	env.db.Stats = engine.Stats{}
	env.run(t, ctx, O3, "SELECT SUM(E_salary) AS s FROM Employees")
	callsO3 := env.db.Stats.UDFCalls
	// 2N = 12 calls canonically vs T+1 = 3 after distribution.
	if callsO2 < 12 {
		t.Errorf("o2 call count unexpectedly low: %d", callsO2)
	}
	if callsO3 > 3 {
		t.Errorf("o3 must need at most T+1 calls, got %d", callsO3)
	}
}

func TestO3SkipsNonDistributablePhone(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	// Register an equality-only pair and a table using it.
	if err := env.schema.Convs().Register(mtsql.ConvPair{
		Name: "phone", ToFunc: "phoneToUniversal", FromFunc: "phoneFromUniversal",
		Class: mtsql.ClassEqualityPreserving,
	}); err != nil {
		t.Fatal(err)
	}
	stmt, err := sqlparse.ParseStatement(`CREATE TABLE Contacts SPECIFIC (
		C_phone VARCHAR(17) NOT NULL CONVERTIBLE @phoneToUniversal @phoneFromUniversal)`)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := env.schema.AddTable(stmt.(*sqlast.CreateTable)); err != nil {
		t.Fatal(err)
	}
	ctx := env.ctx(0, false, 0, 1)
	q, err := sqlparse.ParseQuery("SELECT MIN(C_phone) AS m FROM Contacts")
	if err != nil {
		t.Fatal(err)
	}
	rw, err := rewrite.Query(ctx, q)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := Optimize(ctx, rw, O3)
	if err != nil {
		t.Fatal(err)
	}
	// MIN over an equality-only pair must NOT be distributed (Table 2).
	if strings.Contains(opt.String(), "GROUP BY contacts.ttid") {
		t.Errorf("non-distributable aggregate was distributed: %s", opt)
	}
}

// ---------------------------------------------------------------- o4

func TestO4InlinesConversionFunctions(t *testing.T) {
	env := newEnv(t, engine.ModePostgres)
	ctx := env.ctx(0, false, 0, 1)
	got := env.optimizeText(t, ctx, InlOnly, "SELECT E_salary FROM Employees")
	if strings.Contains(got, "currencyToUniversal(") || strings.Contains(got, "currencyFromUniversal(") {
		t.Errorf("UDF calls not inlined: %s", got)
	}
	// Listing 17's shape: meta tables joined, arithmetic in the SELECT.
	if !strings.Contains(got, "Tenant mt_inl") || !strings.Contains(got, "CurrencyTransform mt_inl") {
		t.Errorf("meta tables not joined: %s", got)
	}
	if !strings.Contains(got, "CT_to_universal * E_salary") {
		t.Errorf("body arithmetic missing: %s", got)
	}
}

func TestO4EliminatesUDFCalls(t *testing.T) {
	env := newEnv(t, engine.ModeSystemC)
	ctx := env.ctx(0, false, 0, 1)
	env.db.Stats = engine.Stats{}
	env.run(t, ctx, O4, "SELECT E_salary FROM Employees ORDER BY E_name")
	if env.db.Stats.UDFCalls != 0 {
		t.Errorf("o4 still issued %d UDF calls", env.db.Stats.UDFCalls)
	}
}

func TestLevelParsing(t *testing.T) {
	for _, l := range Levels {
		got, err := ParseLevel(l.String())
		if err != nil || got != l {
			t.Errorf("ParseLevel(%s) = %v, %v", l, got, err)
		}
	}
	if _, err := ParseLevel("bogus"); err == nil {
		t.Error("bogus level accepted")
	}
}
