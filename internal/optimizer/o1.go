package optimizer

import (
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// applyO1 performs the trivial semantic optimizations of §4.1 on every
// query level:
//
//   - D covers all tenants  → drop D-filters (ttid IN (...))
//   - |D| = 1               → drop ttid join predicates and the ttid
//     components of tuple-IN predicates
//   - D = {C}               → drop conversion-function pairs entirely
func applyO1(ctx *rewrite.Context, q *sqlast.Select) {
	eachSelect(q, func(s *sqlast.Select) {
		o1Level(ctx, s)
	})
}

func o1Level(ctx *rewrite.Context, s *sqlast.Select) {
	dropFilter := func(e sqlast.Expr) bool {
		if ctx.DAll && isDFilter(e) {
			return false
		}
		if len(ctx.D) == 1 && isTTIDJoinPredicate(e) {
			return false
		}
		return true
	}
	s.Where = replaceConjuncts(s.Where, dropFilter)
	s.Having = replaceConjuncts(s.Having, dropFilter)
	// Join ON conditions get the same treatment.
	var visitTE func(te sqlast.TableExpr)
	visitTE = func(te sqlast.TableExpr) {
		if j, ok := te.(*sqlast.JoinExpr); ok {
			visitTE(j.L)
			visitTE(j.R)
			if j.On != nil {
				on := replaceConjuncts(j.On, dropFilter)
				if on == nil {
					// A join needs some condition; keep a tautology.
					on = &sqlast.BinaryExpr{Op: "=", L: sqlast.NewIntLit(1), R: sqlast.NewIntLit(1)}
				}
				j.On = on
			}
		}
	}
	for _, te := range s.From {
		visitTE(te)
	}

	if len(ctx.D) == 1 {
		simplifyTupleIns(s)
	}
	if ctx.DIsExactlyClient() {
		dropConversions(ctx, s)
	}
}

// isDFilter recognizes the D-filters emitted by the canonical rewrite:
// `b.ttid IN (i1, i2, ...)` with integer literals only.
func isDFilter(e sqlast.Expr) bool {
	in, ok := e.(*sqlast.InExpr)
	if !ok || in.Sub != nil || in.Not || !isTTIDRef(in.X) {
		return false
	}
	for _, item := range in.List {
		lit, ok := item.(*sqlast.Literal)
		if !ok || lit.Val.K != sqltypes.KindInt {
			return false
		}
	}
	return true
}

// isTTIDJoinPredicate recognizes `a.ttid = b.ttid`.
func isTTIDJoinPredicate(e sqlast.Expr) bool {
	b, ok := e.(*sqlast.BinaryExpr)
	return ok && b.Op == "=" && isTTIDRef(b.L) && isTTIDRef(b.R)
}

// simplifyTupleIns reduces (x, a.ttid) IN (SELECT y, b.ttid ...) back to
// x IN (SELECT y ...): with a single tenant in D both sides are fixed.
func simplifyTupleIns(s *sqlast.Select) {
	simplify := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			in, ok := n.(*sqlast.InExpr)
			if !ok || in.Sub == nil {
				return true
			}
			row, ok := in.X.(*sqlast.RowExpr)
			if !ok || len(row.Exprs) != 2 || !isTTIDRef(row.Exprs[1]) {
				return true
			}
			last := len(in.Sub.Items) - 1
			if last < 1 || !isTTIDRef(in.Sub.Items[last].Expr) {
				return true
			}
			in.X = row.Exprs[0]
			in.Sub.Items = in.Sub.Items[:last]
			if n := len(in.Sub.GroupBy); n > 0 && isTTIDRef(in.Sub.GroupBy[n-1]) {
				in.Sub.GroupBy = in.Sub.GroupBy[:n-1]
			}
			return true
		})
	}
	for _, it := range s.Items {
		simplify(it.Expr)
	}
	simplify(s.Where)
	simplify(s.Having)
}

// dropConversions removes fromU(toU(x, t), C) wrappers: with D = {C}
// every visible row is already in the client's format (Listing 13 l.9).
func dropConversions(ctx *rewrite.Context, s *sqlast.Select) {
	strip := func(e sqlast.Expr) sqlast.Expr {
		return sqlast.TransformExpr(e, func(n sqlast.Expr) sqlast.Expr {
			if cc, ok := matchFullConv(ctx, n); ok {
				return cc.arg
			}
			return n
		})
	}
	for i := range s.Items {
		if s.Items[i].Expr != nil {
			was := s.Items[i].Expr
			s.Items[i].Expr = strip(s.Items[i].Expr)
			// Keep the output name stable when the wrapper vanishes.
			if s.Items[i].Alias != "" || was == s.Items[i].Expr {
				continue
			}
			if cr, ok := s.Items[i].Expr.(*sqlast.ColumnRef); ok {
				s.Items[i].Alias = cr.Name
			}
		}
	}
	s.Where = strip(s.Where)
	for i := range s.GroupBy {
		s.GroupBy[i] = strip(s.GroupBy[i])
	}
	s.Having = strip(s.Having)
	for i := range s.OrderBy {
		s.OrderBy[i].Expr = strip(s.OrderBy[i].Expr)
	}
	var visitTE func(te sqlast.TableExpr)
	visitTE = func(te sqlast.TableExpr) {
		if j, ok := te.(*sqlast.JoinExpr); ok {
			visitTE(j.L)
			visitTE(j.R)
			j.On = strip(j.On)
		}
	}
	for _, te := range s.From {
		visitTE(te)
	}
}
