package optimizer

import (
	"fmt"
	"strings"

	"mtbase/internal/mtsql"
	"mtbase/internal/rewrite"
	"mtbase/internal/sqlast"
)

// applyO3 performs aggregation distribution (§4.2.2, Listing 16): a
// grouped query whose aggregates convert attribute values per row is
// rewritten into a two-level aggregation — partial aggregates per tenant
// in tenant format (no conversions), one conversion per tenant partial,
// and a final aggregate in universal format converted once to client
// format. This cuts conversion calls from 2N to T+1.
//
// Distribution is gated on Table 2: COUNT always distributes; MIN/MAX
// need an order-preserving pair; SUM/AVG are rewritten for linear pairs
// (to(x) = c·x), where the conversion additionally commutes with the
// multiplicative factors TPC-H aggregates use (price * (1 - discount)).
func applyO3(ctx *rewrite.Context, q *sqlast.Select) {
	eachSelect(q, func(s *sqlast.Select) {
		distributeAggregates(ctx, s)
	})
}

const partAlias = "mt_part"

// aggPlan describes how one aggregate call is split into inner partial
// items and an outer combining expression.
type aggPlan struct {
	key        string // String() of the original call
	outer      sqlast.Expr
	innerItems []sqlast.SelectItem
}

func distributeAggregates(ctx *rewrite.Context, s *sqlast.Select) {
	if s.Distinct || len(s.From) == 0 {
		return
	}
	// Collect aggregate calls from the output clauses.
	var aggs []*sqlast.FuncCall
	unsupported := false
	collect := func(e sqlast.Expr) {
		if e == nil {
			return
		}
		if len(sqlast.SubqueriesOf(e)) > 0 {
			unsupported = true
			return
		}
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			if fc, ok := n.(*sqlast.FuncCall); ok && isAggregateName(fc.Name) {
				aggs = append(aggs, fc)
				return false
			}
			return true
		})
	}
	for _, it := range s.Items {
		collect(it.Expr)
	}
	collect(s.Having)
	for _, o := range s.OrderBy {
		collect(o.Expr)
	}
	if unsupported || len(aggs) == 0 {
		return
	}

	// The transformation pays off only when at least one aggregate
	// converts values per row; and it is only sound when every aggregate
	// is distributable and all conversions share one owner (ttid) source.
	anyConv := false
	var ttidKey string
	var ttidExpr sqlast.Expr
	plans := make(map[string]*aggPlan)
	nextID := 0
	for _, agg := range aggs {
		key := agg.String()
		if _, done := plans[key]; done {
			continue
		}
		plan, convUsed, tExpr, ok := planAggregate(ctx, agg, &nextID)
		if !ok {
			return
		}
		if convUsed {
			anyConv = true
			tk := tExpr.String()
			if ttidKey == "" {
				ttidKey, ttidExpr = tk, tExpr
			} else if ttidKey != tk {
				return // conversions from different owners: bail out
			}
		}
		plan.key = key
		plans[key] = plan
	}
	if !anyConv {
		return
	}
	if ttidExpr == nil {
		return
	}

	// Resolve output aliases in GROUP BY (the SQL rule the paper invokes
	// in §3.1): `GROUP BY yr` with `EXTRACT(...) AS yr` groups by the
	// expression, which is what the inner query must compute.
	aliasExpr := make(map[string]sqlast.Expr)
	for _, it := range s.Items {
		if it.Alias != "" && it.Expr != nil && !hasAggregateCall(it.Expr) {
			aliasExpr[strings.ToLower(it.Alias)] = it.Expr
		}
	}
	resolvedGroupBy := make([]sqlast.Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		resolvedGroupBy[i] = g
		if cr, ok := g.(*sqlast.ColumnRef); ok && cr.Table == "" {
			if e, ok := aliasExpr[strings.ToLower(cr.Name)]; ok {
				resolvedGroupBy[i] = sqlast.CloneExpr(e)
			}
		}
	}

	// Build the inner per-tenant partial aggregation.
	inner := sqlast.NewSelect()
	inner.From = s.From
	inner.Where = s.Where
	groupRefs := make(map[string]sqlast.Expr) // original group expr -> outer ref
	for i, g := range resolvedGroupBy {
		alias := fmt.Sprintf("mt_g%d", i+1)
		inner.Items = append(inner.Items, sqlast.SelectItem{Expr: sqlast.CloneExpr(g), Alias: alias})
		inner.GroupBy = append(inner.GroupBy, sqlast.CloneExpr(g))
		ref := &sqlast.ColumnRef{Table: partAlias, Name: alias}
		groupRefs[g.String()] = ref
		// An aliased original spelling keeps mapping too (ORDER BY yr).
		groupRefs[s.GroupBy[i].String()] = ref
	}
	inner.GroupBy = append(inner.GroupBy, sqlast.CloneExpr(ttidExpr))
	for _, plan := range plans {
		inner.Items = append(inner.Items, plan.innerItems...)
	}

	// Rebuild the outer query over the partials.
	mapExpr := func(e sqlast.Expr) sqlast.Expr {
		return topDownReplace(e, func(n sqlast.Expr) (sqlast.Expr, bool) {
			if fc, ok := n.(*sqlast.FuncCall); ok && isAggregateName(fc.Name) {
				if p, ok := plans[fc.String()]; ok {
					return sqlast.CloneExpr(p.outer), true
				}
			}
			if ref, ok := groupRefs[n.String()]; ok {
				return sqlast.CloneExpr(ref), true
			}
			return n, false
		})
	}

	newItems := make([]sqlast.SelectItem, len(s.Items))
	for i, it := range s.Items {
		alias := it.Alias
		if alias == "" {
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				alias = cr.Name
			}
		}
		newItems[i] = sqlast.SelectItem{Expr: mapExpr(it.Expr), Alias: alias}
	}
	newGroupBy := make([]sqlast.Expr, len(resolvedGroupBy))
	for i, g := range resolvedGroupBy {
		newGroupBy[i] = sqlast.CloneExpr(groupRefs[g.String()])
	}
	var newHaving sqlast.Expr
	if s.Having != nil {
		newHaving = mapExpr(s.Having)
	}
	newOrderBy := make([]sqlast.OrderItem, len(s.OrderBy))
	for i, o := range s.OrderBy {
		if cr, ok := o.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" && matchesAlias(newItems, cr.Name) {
			newOrderBy[i] = o // references an output alias; still valid
			continue
		}
		newOrderBy[i] = sqlast.OrderItem{Expr: mapExpr(o.Expr), Desc: o.Desc}
	}

	s.Items = newItems
	s.From = []sqlast.TableExpr{&sqlast.DerivedTable{Sub: inner, Alias: partAlias}}
	s.Where = nil
	s.GroupBy = newGroupBy
	s.Having = newHaving
	s.OrderBy = newOrderBy
}

func matchesAlias(items []sqlast.SelectItem, name string) bool {
	for _, it := range items {
		if strings.EqualFold(it.Alias, name) {
			return true
		}
	}
	return false
}

func isAggregateName(name string) bool {
	switch strings.ToUpper(name) {
	case "COUNT", "SUM", "AVG", "MIN", "MAX":
		return true
	}
	return false
}

// planAggregate decides how to split one aggregate call. It returns the
// plan, whether a conversion is involved, the ttid expression of that
// conversion, and whether distribution is possible at all.
func planAggregate(ctx *rewrite.Context, agg *sqlast.FuncCall, nextID *int) (*aggPlan, bool, sqlast.Expr, bool) {
	if agg.Distinct {
		return nil, false, nil, false
	}
	upper := strings.ToUpper(agg.Name)
	newAlias := func() string {
		*nextID++
		return fmt.Sprintf("mt_a%d", *nextID)
	}
	ref := func(alias string) sqlast.Expr {
		return &sqlast.ColumnRef{Table: partAlias, Name: alias}
	}

	if upper == "COUNT" {
		// COUNT distributes over every conversion class; conversions
		// inside the argument preserve NULLs and can simply be stripped.
		var inner sqlast.Expr
		if agg.Star {
			inner = &sqlast.FuncCall{Name: "COUNT", Star: true}
		} else {
			arg, _, ok := stripConversions(ctx, agg.Args[0])
			if !ok {
				return nil, false, nil, false
			}
			inner = &sqlast.FuncCall{Name: "COUNT", Args: []sqlast.Expr{arg}}
		}
		a := newAlias()
		outer := &sqlast.FuncCall{Name: "COALESCE", Args: []sqlast.Expr{
			&sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(a)}},
			sqlast.NewIntLit(0),
		}}
		return &aggPlan{
			outer:      outer,
			innerItems: []sqlast.SelectItem{{Expr: inner, Alias: a}},
		}, false, nil, true
	}

	if len(agg.Args) != 1 {
		return nil, false, nil, false
	}
	arg := agg.Args[0]
	cc := findSingleConversion(ctx, arg)

	switch upper {
	case "MIN", "MAX":
		if cc == nil {
			a := newAlias()
			return &aggPlan{
				outer: &sqlast.FuncCall{Name: upper, Args: []sqlast.Expr{ref(a)}},
				innerItems: []sqlast.SelectItem{{
					Expr:  &sqlast.FuncCall{Name: upper, Args: []sqlast.Expr{sqlast.CloneExpr(arg)}},
					Alias: a,
				}},
			}, false, nil, true
		}
		// MIN/MAX require the argument to be exactly the conversion and an
		// order-preserving pair (Table 2).
		direct, isDirect := matchFullConv(ctx, arg)
		if !isDirect || !direct.pair.Class.AtLeast(mtsql.ClassOrderPreserving) {
			return nil, false, nil, false
		}
		cc = direct
		a := newAlias()
		innerAgg := &sqlast.FuncCall{Name: upper, Args: []sqlast.Expr{sqlast.CloneExpr(cc.arg)}}
		innerConv := &sqlast.FuncCall{Name: cc.pair.ToFunc, Args: []sqlast.Expr{innerAgg, sqlast.CloneExpr(cc.ttidExpr)}}
		outer := &sqlast.FuncCall{Name: cc.pair.FromFunc, Args: []sqlast.Expr{
			&sqlast.FuncCall{Name: upper, Args: []sqlast.Expr{ref(a)}},
			sqlast.NewIntLit(ctx.C),
		}}
		return &aggPlan{
			outer:      outer,
			innerItems: []sqlast.SelectItem{{Expr: innerConv, Alias: a}},
		}, true, cc.ttidExpr, true

	case "SUM", "AVG":
		if cc == nil {
			sumAlias, cntAlias := newAlias(), newAlias()
			innerSum := &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{sqlast.CloneExpr(arg)}}
			innerCnt := &sqlast.FuncCall{Name: "COUNT", Args: []sqlast.Expr{sqlast.CloneExpr(arg)}}
			var outer sqlast.Expr
			if upper == "SUM" {
				outer = &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(sumAlias)}}
				return &aggPlan{outer: outer,
					innerItems: []sqlast.SelectItem{{Expr: innerSum, Alias: sumAlias}}}, false, nil, true
			}
			outer = &sqlast.BinaryExpr{Op: "/",
				L: &sqlast.FuncCall{Name: "CAST_DECIMAL", Args: []sqlast.Expr{
					&sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(sumAlias)}}}},
				R: &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(cntAlias)}},
			}
			return &aggPlan{outer: outer, innerItems: []sqlast.SelectItem{
				{Expr: innerSum, Alias: sumAlias},
				{Expr: innerCnt, Alias: cntAlias},
			}}, false, nil, true
		}
		// SUM/AVG over a converted value: sound for linear pairs, where
		// the conversion also commutes with conversion-free multiplicative
		// factors (c·x·k = c·(x·k)).
		if !cc.full || !cc.pair.Class.AtLeast(mtsql.ClassLinear) {
			return nil, false, nil, false
		}
		stripped, n, ok := stripMultiplicativeConversion(ctx, arg, cc)
		if !ok || n != 1 {
			return nil, false, nil, false
		}
		sumAlias := newAlias()
		innerSum := &sqlast.FuncCall{Name: cc.pair.ToFunc, Args: []sqlast.Expr{
			&sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{stripped}},
			sqlast.CloneExpr(cc.ttidExpr),
		}}
		items := []sqlast.SelectItem{{Expr: innerSum, Alias: sumAlias}}
		var outer sqlast.Expr
		if upper == "SUM" {
			outer = &sqlast.FuncCall{Name: cc.pair.FromFunc, Args: []sqlast.Expr{
				&sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(sumAlias)}},
				sqlast.NewIntLit(ctx.C),
			}}
		} else {
			cntAlias := newAlias()
			items = append(items, sqlast.SelectItem{
				Expr:  &sqlast.FuncCall{Name: "COUNT", Args: []sqlast.Expr{sqlast.CloneExpr(stripped)}},
				Alias: cntAlias,
			})
			outer = &sqlast.FuncCall{Name: cc.pair.FromFunc, Args: []sqlast.Expr{
				&sqlast.BinaryExpr{Op: "/",
					L: &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(sumAlias)}},
					R: &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{ref(cntAlias)}},
				},
				sqlast.NewIntLit(ctx.C),
			}}
		}
		return &aggPlan{outer: outer, innerItems: items}, true, cc.ttidExpr, true
	}
	return nil, false, nil, false
}

// findSingleConversion locates the unique full conversion call in e, or
// nil when there is none. Two or more distinct conversions: the caller
// bails out via stripMultiplicativeConversion's count.
func findSingleConversion(ctx *rewrite.Context, e sqlast.Expr) *convCall {
	var found *convCall
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		if cc, ok := matchFullConv(ctx, n); ok {
			if found == nil {
				found = cc
			}
			return false
		}
		return true
	})
	return found
}

// stripConversions replaces every full conversion call in e with its bare
// argument; ok is false when a conversion function appears in a form the
// optimizer does not recognize.
func stripConversions(ctx *rewrite.Context, e sqlast.Expr) (sqlast.Expr, int, bool) {
	n := 0
	bad := false
	out := sqlast.TransformExpr(sqlast.CloneExpr(e), func(node sqlast.Expr) sqlast.Expr {
		if cc, ok := matchFullConv(ctx, node); ok {
			n++
			return cc.arg
		}
		if fc, ok := node.(*sqlast.FuncCall); ok {
			if pair := ctx.Schema.Convs().ByFunc(fc.Name); pair != nil && strings.EqualFold(fc.Name, pair.FromFunc) {
				bad = true
			}
		}
		return node
	})
	return out, n, !bad
}

// stripMultiplicativeConversion strips the conversion from e, verifying
// that the conversion appears only as a multiplicative factor (product or
// numerator), so that a linear conversion commutes with the rest of the
// expression.
func stripMultiplicativeConversion(ctx *rewrite.Context, e sqlast.Expr, cc *convCall) (sqlast.Expr, int, bool) {
	count := 0
	var walk func(x sqlast.Expr) (sqlast.Expr, bool)
	walk = func(x sqlast.Expr) (sqlast.Expr, bool) {
		if c, ok := matchFullConv(ctx, x); ok {
			if c.pair != cc.pair || c.ttidExpr.String() != cc.ttidExpr.String() {
				return nil, false
			}
			count++
			return sqlast.CloneExpr(c.arg), true
		}
		switch b := x.(type) {
		case *sqlast.BinaryExpr:
			switch b.Op {
			case "*":
				lHas := containsConvCall(ctx, b.L)
				rHas := containsConvCall(ctx, b.R)
				if lHas && rHas {
					return nil, false
				}
				if lHas {
					l, ok := walk(b.L)
					if !ok {
						return nil, false
					}
					return &sqlast.BinaryExpr{Op: "*", L: l, R: sqlast.CloneExpr(b.R)}, true
				}
				if rHas {
					r, ok := walk(b.R)
					if !ok {
						return nil, false
					}
					return &sqlast.BinaryExpr{Op: "*", L: sqlast.CloneExpr(b.L), R: r}, true
				}
				return sqlast.CloneExpr(x), true
			case "/":
				if containsConvCall(ctx, b.R) {
					return nil, false
				}
				l, ok := walk(b.L)
				if !ok {
					return nil, false
				}
				return &sqlast.BinaryExpr{Op: "/", L: l, R: sqlast.CloneExpr(b.R)}, true
			}
		}
		if !containsConvCall(ctx, x) {
			return sqlast.CloneExpr(x), true
		}
		return nil, false
	}
	out, ok := walk(e)
	if !ok {
		return nil, 0, false
	}
	return out, count, true
}

// topDownReplace applies f pre-order; when f reports a replacement the
// subtree is not descended further. Subqueries are boundaries.
func topDownReplace(e sqlast.Expr, f func(sqlast.Expr) (sqlast.Expr, bool)) sqlast.Expr {
	if e == nil {
		return nil
	}
	if repl, done := f(e); done {
		return repl
	}
	switch x := e.(type) {
	case *sqlast.BinaryExpr:
		x.L = topDownReplace(x.L, f)
		x.R = topDownReplace(x.R, f)
	case *sqlast.UnaryExpr:
		x.X = topDownReplace(x.X, f)
	case *sqlast.FuncCall:
		for i, a := range x.Args {
			x.Args[i] = topDownReplace(a, f)
		}
	case *sqlast.CaseExpr:
		x.Operand = topDownReplace(x.Operand, f)
		for i := range x.Whens {
			x.Whens[i].Cond = topDownReplace(x.Whens[i].Cond, f)
			x.Whens[i].Then = topDownReplace(x.Whens[i].Then, f)
		}
		x.Else = topDownReplace(x.Else, f)
	case *sqlast.BetweenExpr:
		x.X = topDownReplace(x.X, f)
		x.Lo = topDownReplace(x.Lo, f)
		x.Hi = topDownReplace(x.Hi, f)
	case *sqlast.LikeExpr:
		x.X = topDownReplace(x.X, f)
		x.Pattern = topDownReplace(x.Pattern, f)
	case *sqlast.IsNullExpr:
		x.X = topDownReplace(x.X, f)
	case *sqlast.InExpr:
		x.X = topDownReplace(x.X, f)
		for i, it := range x.List {
			x.List[i] = topDownReplace(it, f)
		}
	case *sqlast.ExtractExpr:
		x.X = topDownReplace(x.X, f)
	case *sqlast.SubstringExpr:
		x.X = topDownReplace(x.X, f)
		x.From = topDownReplace(x.From, f)
		x.For = topDownReplace(x.For, f)
	}
	return e
}
