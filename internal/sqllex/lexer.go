// Package sqllex tokenizes the SQL dialect understood by the engine,
// including the MTSQL keywords (GLOBAL, SPECIFIC, COMPARABLE, CONVERTIBLE,
// SCOPE) and conversion-function annotations (@name).
package sqllex

import (
	"fmt"
	"strings"
)

// TokenKind classifies a lexical token.
type TokenKind uint8

// Token kinds.
const (
	TokEOF TokenKind = iota
	TokIdent
	TokKeyword
	TokNumber
	TokString // contents without quotes
	TokOp     // punctuation / operators, Text holds the symbol
	TokAt     // @name conversion-function annotation, Text holds name
	TokParam  // $1, $2 positional parameter (Text holds digits) or ? (Text empty)
)

func (k TokenKind) String() string {
	switch k {
	case TokEOF:
		return "EOF"
	case TokIdent:
		return "identifier"
	case TokKeyword:
		return "keyword"
	case TokNumber:
		return "number"
	case TokString:
		return "string"
	case TokOp:
		return "operator"
	case TokAt:
		return "@annotation"
	case TokParam:
		return "$parameter"
	}
	return "token"
}

// Token is a single lexical token. Keywords are upper-cased in Text;
// identifiers keep their original spelling.
type Token struct {
	Kind TokenKind
	Text string
	Pos  int // byte offset in the input
}

func (t Token) String() string {
	if t.Kind == TokEOF {
		return "end of input"
	}
	if t.Kind == TokParam {
		if t.Text == "" {
			return `"?"`
		}
		return fmt.Sprintf("%q", "$"+t.Text)
	}
	return fmt.Sprintf("%q", t.Text)
}

// keywords is the reserved-word set. MTSQL additions are marked.
var keywords = map[string]bool{
	"SELECT": true, "FROM": true, "WHERE": true, "GROUP": true, "BY": true,
	"HAVING": true, "ORDER": true, "ASC": true, "DESC": true, "LIMIT": true,
	"AS": true, "AND": true, "OR": true, "NOT": true, "IN": true,
	"EXISTS": true, "BETWEEN": true, "LIKE": true, "IS": true, "NULL": true,
	"TRUE": true, "FALSE": true, "CASE": true, "WHEN": true, "THEN": true,
	"ELSE": true, "END": true, "JOIN": true, "INNER": true, "LEFT": true,
	"RIGHT": true, "OUTER": true, "ON": true, "CROSS": true, "DISTINCT": true,
	"ALL": true, "ANY": true, "SOME": true, "UNION": true, "EXCEPT": true,
	"INTERSECT": true, "CREATE": true, "TABLE": true, "VIEW": true,
	"FUNCTION": true, "RETURNS": true, "LANGUAGE": true, "IMMUTABLE": true,
	"SQL": true, "DROP": true, "ALTER": true, "INSERT": true, "INTO": true,
	"VALUES": true, "UPDATE": true, "SET": true, "DELETE": true,
	"GRANT": true, "REVOKE": true, "TO": true, "READ": true,
	"PRIMARY": true, "KEY": true, "FOREIGN": true, "REFERENCES": true,
	"CONSTRAINT": true, "CHECK": true, "UNIQUE": true, "DEFAULT": true,
	"INTEGER": true, "INT": true, "BIGINT": true, "DECIMAL": true,
	"NUMERIC": true, "VARCHAR": true, "CHAR": true, "TEXT": true,
	"DATE": true, "BOOLEAN": true, "INTERVAL": true, "YEAR": true,
	"MONTH": true, "DAY": true, "EXTRACT": true, "SUBSTRING": true,
	"FOR": true, "CAST": true, "COUNT": true, "SUM": true, "AVG": true,
	"MIN": true, "MAX": true,
	// MTSQL extensions (§2.2):
	"GLOBAL": true, "SPECIFIC": true, "COMPARABLE": true,
	"CONVERTIBLE": true, "SCOPE": true,
}

// IsKeyword reports whether an upper-cased word is reserved.
func IsKeyword(word string) bool { return keywords[strings.ToUpper(word)] }

// Lexer scans SQL text into tokens.
type Lexer struct {
	src string
	pos int
}

// New returns a Lexer over src.
func New(src string) *Lexer { return &Lexer{src: src} }

// Tokenize scans the entire input, returning all tokens up to EOF.
func Tokenize(src string) ([]Token, error) {
	lx := New(src)
	var toks []Token
	for {
		t, err := lx.Next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, nil
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() (Token, error) {
	lx.skipSpaceAndComments()
	start := lx.pos
	if lx.pos >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: start}, nil
	}
	c := lx.src[lx.pos]
	switch {
	case isIdentStart(c):
		return lx.lexWord(start), nil
	case c >= '0' && c <= '9':
		return lx.lexNumber(start)
	case c == '\'':
		return lx.lexString(start)
	case c == '"':
		return lx.lexQuotedIdent(start)
	case c == '@':
		lx.pos++
		w := lx.takeWhile(isIdentPart)
		if w == "" {
			return Token{}, fmt.Errorf("sqllex: bare '@' at offset %d", start)
		}
		return Token{Kind: TokAt, Text: w, Pos: start}, nil
	case c == '$':
		lx.pos++
		w := lx.takeWhile(func(b byte) bool { return b >= '0' && b <= '9' })
		if w == "" {
			return Token{}, fmt.Errorf("sqllex: bare '$' at offset %d", start)
		}
		return Token{Kind: TokParam, Text: w, Pos: start}, nil
	case c == '?':
		// Anonymous bind-parameter placeholder; the parser numbers these
		// left to right.
		lx.pos++
		return Token{Kind: TokParam, Text: "", Pos: start}, nil
	}
	return lx.lexOp(start)
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		switch {
		case c == ' ' || c == '\t' || c == '\n' || c == '\r':
			lx.pos++
		case c == '-' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '-':
			for lx.pos < len(lx.src) && lx.src[lx.pos] != '\n' {
				lx.pos++
			}
		case c == '/' && lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '*':
			end := strings.Index(lx.src[lx.pos+2:], "*/")
			if end < 0 {
				lx.pos = len(lx.src)
			} else {
				lx.pos += 2 + end + 2
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
}

func isIdentPart(c byte) bool {
	return isIdentStart(c) || (c >= '0' && c <= '9')
}

func (lx *Lexer) takeWhile(pred func(byte) bool) string {
	start := lx.pos
	for lx.pos < len(lx.src) && pred(lx.src[lx.pos]) {
		lx.pos++
	}
	return lx.src[start:lx.pos]
}

func (lx *Lexer) lexWord(start int) Token {
	w := lx.takeWhile(isIdentPart)
	upper := strings.ToUpper(w)
	if keywords[upper] {
		return Token{Kind: TokKeyword, Text: upper, Pos: start}
	}
	return Token{Kind: TokIdent, Text: w, Pos: start}
}

func (lx *Lexer) lexNumber(start int) (Token, error) {
	lx.takeWhile(func(b byte) bool { return b >= '0' && b <= '9' })
	if lx.pos < len(lx.src) && lx.src[lx.pos] == '.' {
		lx.pos++
		lx.takeWhile(func(b byte) bool { return b >= '0' && b <= '9' })
	}
	if lx.pos < len(lx.src) && (lx.src[lx.pos] == 'e' || lx.src[lx.pos] == 'E') {
		save := lx.pos
		lx.pos++
		if lx.pos < len(lx.src) && (lx.src[lx.pos] == '+' || lx.src[lx.pos] == '-') {
			lx.pos++
		}
		if d := lx.takeWhile(func(b byte) bool { return b >= '0' && b <= '9' }); d == "" {
			lx.pos = save // not an exponent; leave 'e' for the next token
		}
	}
	return Token{Kind: TokNumber, Text: lx.src[start:lx.pos], Pos: start}, nil
}

func (lx *Lexer) lexString(start int) (Token, error) {
	lx.pos++ // opening quote
	var sb strings.Builder
	for lx.pos < len(lx.src) {
		c := lx.src[lx.pos]
		if c == '\'' {
			if lx.pos+1 < len(lx.src) && lx.src[lx.pos+1] == '\'' {
				sb.WriteByte('\'')
				lx.pos += 2
				continue
			}
			lx.pos++
			return Token{Kind: TokString, Text: sb.String(), Pos: start}, nil
		}
		sb.WriteByte(c)
		lx.pos++
	}
	return Token{}, fmt.Errorf("sqllex: unterminated string at offset %d", start)
}

func (lx *Lexer) lexQuotedIdent(start int) (Token, error) {
	lx.pos++ // opening quote
	end := strings.IndexByte(lx.src[lx.pos:], '"')
	if end < 0 {
		return Token{}, fmt.Errorf("sqllex: unterminated quoted identifier at offset %d", start)
	}
	text := lx.src[lx.pos : lx.pos+end]
	lx.pos += end + 1
	return Token{Kind: TokIdent, Text: text, Pos: start}, nil
}

var twoCharOps = map[string]bool{
	"<=": true, ">=": true, "<>": true, "!=": true, "||": true,
}

func (lx *Lexer) lexOp(start int) (Token, error) {
	if lx.pos+1 < len(lx.src) && twoCharOps[lx.src[lx.pos:lx.pos+2]] {
		t := Token{Kind: TokOp, Text: lx.src[lx.pos : lx.pos+2], Pos: start}
		lx.pos += 2
		return t, nil
	}
	c := lx.src[lx.pos]
	switch c {
	case '(', ')', ',', ';', '.', '*', '+', '-', '/', '%', '<', '>', '=', '[', ']', '{', '}':
		lx.pos++
		return Token{Kind: TokOp, Text: string(c), Pos: start}, nil
	}
	return Token{}, fmt.Errorf("sqllex: unexpected character %q at offset %d", c, start)
}
