package sqllex

import "testing"

func kinds(toks []Token) []TokenKind {
	ks := make([]TokenKind, len(toks))
	for i, t := range toks {
		ks[i] = t.Kind
	}
	return ks
}

func TestTokenizeSimpleQuery(t *testing.T) {
	toks, err := Tokenize("SELECT e_name, e_salary FROM Employees WHERE e_age >= 45")
	if err != nil {
		t.Fatal(err)
	}
	want := []struct {
		kind TokenKind
		text string
	}{
		{TokKeyword, "SELECT"}, {TokIdent, "e_name"}, {TokOp, ","},
		{TokIdent, "e_salary"}, {TokKeyword, "FROM"}, {TokIdent, "Employees"},
		{TokKeyword, "WHERE"}, {TokIdent, "e_age"}, {TokOp, ">="},
		{TokNumber, "45"}, {TokEOF, ""},
	}
	if len(toks) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(toks), len(want), toks)
	}
	for i, w := range want {
		if toks[i].Kind != w.kind || toks[i].Text != w.text {
			t.Errorf("token %d = (%v, %q), want (%v, %q)", i, toks[i].Kind, toks[i].Text, w.kind, w.text)
		}
	}
}

func TestKeywordsCaseInsensitive(t *testing.T) {
	toks, err := Tokenize("select From WHERE")
	if err != nil {
		t.Fatal(err)
	}
	for _, tok := range toks[:3] {
		if tok.Kind != TokKeyword {
			t.Errorf("%q not lexed as keyword", tok.Text)
		}
	}
}

func TestMTSQLKeywords(t *testing.T) {
	toks, err := Tokenize("CREATE TABLE t SPECIFIC (a INTEGER COMPARABLE, b VARCHAR(17) CONVERTIBLE @toU @fromU)")
	if err != nil {
		t.Fatal(err)
	}
	var ats []string
	for _, tok := range toks {
		if tok.Kind == TokAt {
			ats = append(ats, tok.Text)
		}
	}
	if len(ats) != 2 || ats[0] != "toU" || ats[1] != "fromU" {
		t.Errorf("annotations = %v", ats)
	}
}

func TestStringEscapes(t *testing.T) {
	toks, err := Tokenize("'O''Brien'")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokString || toks[0].Text != "O'Brien" {
		t.Errorf("got %v %q", toks[0].Kind, toks[0].Text)
	}
}

func TestUnterminatedString(t *testing.T) {
	if _, err := Tokenize("'oops"); err == nil {
		t.Error("unterminated string accepted")
	}
}

func TestNumbers(t *testing.T) {
	toks, err := Tokenize("1 2.5 0.05 100")
	if err != nil {
		t.Fatal(err)
	}
	wants := []string{"1", "2.5", "0.05", "100"}
	for i, w := range wants {
		if toks[i].Kind != TokNumber || toks[i].Text != w {
			t.Errorf("number %d = %q", i, toks[i].Text)
		}
	}
}

func TestComments(t *testing.T) {
	toks, err := Tokenize("SELECT -- line comment\n 1 /* block\ncomment */ FROM t")
	if err != nil {
		t.Fatal(err)
	}
	if len(toks) != 5 { // SELECT 1 FROM t EOF
		t.Errorf("tokens after comment stripping: %v", kinds(toks))
	}
}

func TestParams(t *testing.T) {
	toks, err := Tokenize("SELECT $1 * $2")
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokParam || toks[1].Text != "1" {
		t.Errorf("param token = %v %q", toks[1].Kind, toks[1].Text)
	}
	if toks[3].Kind != TokParam || toks[3].Text != "2" {
		t.Errorf("param token = %v %q", toks[3].Kind, toks[3].Text)
	}
}

func TestOperators(t *testing.T) {
	toks, err := Tokenize("a <> b <= c >= d != e || f")
	if err != nil {
		t.Fatal(err)
	}
	ops := []string{"<>", "<=", ">=", "!=", "||"}
	j := 0
	for _, tok := range toks {
		if tok.Kind == TokOp {
			if tok.Text != ops[j] {
				t.Errorf("op %d = %q want %q", j, tok.Text, ops[j])
			}
			j++
		}
	}
	if j != len(ops) {
		t.Errorf("found %d ops, want %d", j, len(ops))
	}
}

func TestQuotedIdent(t *testing.T) {
	toks, err := Tokenize(`SELECT "Weird Name" FROM t`)
	if err != nil {
		t.Fatal(err)
	}
	if toks[1].Kind != TokIdent || toks[1].Text != "Weird Name" {
		t.Errorf("quoted ident = %v %q", toks[1].Kind, toks[1].Text)
	}
}

func TestUnexpectedChar(t *testing.T) {
	if _, err := Tokenize("SELECT #"); err == nil {
		t.Error("unexpected character accepted")
	}
}

func TestDateKeywordAndLiteral(t *testing.T) {
	toks, err := Tokenize("DATE '1994-01-01' + INTERVAL '1' YEAR")
	if err != nil {
		t.Fatal(err)
	}
	if toks[0].Kind != TokKeyword || toks[0].Text != "DATE" {
		t.Errorf("DATE token = %v %q", toks[0].Kind, toks[0].Text)
	}
	if toks[1].Kind != TokString || toks[1].Text != "1994-01-01" {
		t.Errorf("date literal = %q", toks[1].Text)
	}
}

func TestQuestionMarkPlaceholder(t *testing.T) {
	toks, err := Tokenize("SELECT a FROM t WHERE a > ? AND b = $2")
	if err != nil {
		t.Fatal(err)
	}
	var params []Token
	for _, tok := range toks {
		if tok.Kind == TokParam {
			params = append(params, tok)
		}
	}
	if len(params) != 2 {
		t.Fatalf("want 2 param tokens, got %d", len(params))
	}
	if params[0].Text != "" {
		t.Errorf("? token text = %q, want empty", params[0].Text)
	}
	if params[1].Text != "2" {
		t.Errorf("$2 token text = %q", params[1].Text)
	}
	if got := params[0].String(); got != `"?"` {
		t.Errorf("? token String = %s", got)
	}
	if got := params[1].String(); got != `"$2"` {
		t.Errorf("$2 token String = %s", got)
	}
}
