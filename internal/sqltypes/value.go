// Package sqltypes implements the SQL value system shared by the parser,
// the execution engine and the MTSQL layer: typed values with three-valued
// logic, numeric coercion, date/interval arithmetic and hash keys.
package sqltypes

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"
)

// Kind identifies the runtime type of a Value.
type Kind uint8

// The SQL types supported by the engine. Decimal columns are represented as
// Float (binary float64); the MT-H workload tolerates this because result
// validation compares with a relative epsilon (see internal/mth).
const (
	KindNull Kind = iota
	KindInt
	KindFloat
	KindString
	KindBool
	KindDate     // days since 1970-01-01 (UTC)
	KindInterval // I = days, F = months; either part may be zero
)

func (k Kind) String() string {
	switch k {
	case KindNull:
		return "NULL"
	case KindInt:
		return "INTEGER"
	case KindFloat:
		return "DECIMAL"
	case KindString:
		return "VARCHAR"
	case KindBool:
		return "BOOLEAN"
	case KindDate:
		return "DATE"
	case KindInterval:
		return "INTERVAL"
	}
	return fmt.Sprintf("Kind(%d)", uint8(k))
}

// Value is a single SQL value. The zero Value is SQL NULL.
type Value struct {
	K Kind
	I int64
	F float64
	S string
}

// Null is the SQL NULL value.
var Null = Value{}

// NewInt returns an INTEGER value.
func NewInt(i int64) Value { return Value{K: KindInt, I: i} }

// NewFloat returns a DECIMAL value.
func NewFloat(f float64) Value { return Value{K: KindFloat, F: f} }

// NewString returns a VARCHAR value.
func NewString(s string) Value { return Value{K: KindString, S: s} }

// NewBool returns a BOOLEAN value.
func NewBool(b bool) Value {
	if b {
		return Value{K: KindBool, I: 1}
	}
	return Value{K: KindBool}
}

// NewDate returns a DATE value holding days since the Unix epoch.
func NewDate(days int64) Value { return Value{K: KindDate, I: days} }

// NewInterval returns an INTERVAL of the given days and months.
func NewInterval(days, months int64) Value {
	return Value{K: KindInterval, I: days, F: float64(months)}
}

// ParseDate parses a YYYY-MM-DD literal into a DATE value.
func ParseDate(s string) (Value, error) {
	t, err := time.Parse("2006-01-02", s)
	if err != nil {
		return Null, fmt.Errorf("sqltypes: invalid date %q: %w", s, err)
	}
	return NewDate(t.Unix() / 86400), nil
}

// MustDate is ParseDate for literals known to be valid; it panics on error.
func MustDate(s string) Value {
	v, err := ParseDate(s)
	if err != nil {
		panic(err)
	}
	return v
}

// DateToTime converts a DATE value to a UTC time.Time at midnight.
func DateToTime(v Value) time.Time {
	return time.Unix(v.I*86400, 0).UTC()
}

// TimeToDate converts a time.Time to a DATE value (UTC calendar day).
func TimeToDate(t time.Time) Value {
	y, m, d := t.UTC().Date()
	u := time.Date(y, m, d, 0, 0, 0, 0, time.UTC)
	return NewDate(u.Unix() / 86400)
}

// BindValue converts a Go value supplied as a bind argument into a SQL
// value. nil maps to NULL, time.Time to DATE (UTC calendar day); a Value
// passes through unchanged. Strings stay strings — plan-time type hints
// coerce them (e.g. to DATE) per statement slot.
func BindValue(v any) (Value, error) {
	switch x := v.(type) {
	case nil:
		return Null, nil
	case Value:
		return x, nil
	case int:
		return NewInt(int64(x)), nil
	case int32:
		return NewInt(int64(x)), nil
	case int64:
		return NewInt(x), nil
	case float32:
		return NewFloat(float64(x)), nil
	case float64:
		return NewFloat(x), nil
	case string:
		return NewString(x), nil
	case bool:
		return NewBool(x), nil
	case time.Time:
		return TimeToDate(x), nil
	}
	return Null, fmt.Errorf("sqltypes: unsupported bind type %T", v)
}

// IsNull reports whether v is SQL NULL.
func (v Value) IsNull() bool { return v.K == KindNull }

// Bool reports the truth value of a BOOLEAN; NULL and non-booleans are false.
func (v Value) Bool() bool { return v.K == KindBool && v.I != 0 }

// AsInt returns the value as int64 (INTEGER, DECIMAL truncated, DATE days).
func (v Value) AsInt() int64 {
	switch v.K {
	case KindInt, KindDate, KindBool:
		return v.I
	case KindFloat:
		return int64(v.F)
	}
	return 0
}

// AsFloat returns the value as float64.
func (v Value) AsFloat() float64 {
	switch v.K {
	case KindInt, KindDate:
		return float64(v.I)
	case KindFloat:
		return v.F
	case KindBool:
		return float64(v.I)
	}
	return 0
}

// AsString returns the value as its SQL text form without quotes.
func (v Value) AsString() string {
	switch v.K {
	case KindString:
		return v.S
	default:
		return v.String()
	}
}

// IsNumeric reports whether v is INTEGER or DECIMAL.
func (v Value) IsNumeric() bool { return v.K == KindInt || v.K == KindFloat }

// String renders the value the way the engine prints result cells.
func (v Value) String() string {
	switch v.K {
	case KindNull:
		return "NULL"
	case KindInt:
		return strconv.FormatInt(v.I, 10)
	case KindFloat:
		return strconv.FormatFloat(v.F, 'f', 2, 64)
	case KindString:
		return v.S
	case KindBool:
		if v.I != 0 {
			return "true"
		}
		return "false"
	case KindDate:
		return DateToTime(v).Format("2006-01-02")
	case KindInterval:
		var parts []string
		if int64(v.F) != 0 {
			parts = append(parts, fmt.Sprintf("%d months", int64(v.F)))
		}
		if v.I != 0 || len(parts) == 0 {
			parts = append(parts, fmt.Sprintf("%d days", v.I))
		}
		return strings.Join(parts, " ")
	}
	return "?"
}

// SQLLiteral renders the value as a SQL literal suitable for re-parsing.
func (v Value) SQLLiteral() string {
	switch v.K {
	case KindString:
		return "'" + strings.ReplaceAll(v.S, "'", "''") + "'"
	case KindDate:
		return "DATE '" + v.String() + "'"
	default:
		return v.String()
	}
}

// Compare orders two values. ok is false when either side is NULL or the
// kinds are incomparable; then the comparison result is SQL unknown.
func Compare(a, b Value) (cmp int, ok bool) {
	// Fast path for the dominant case in join keys and filters; KindInt
	// implies non-NULL.
	if a.K == KindInt && b.K == KindInt {
		return cmpInt(a.I, b.I), true
	}
	if a.IsNull() || b.IsNull() {
		return 0, false
	}
	switch {
	case a.IsNumeric() && b.IsNumeric():
		// int-int was handled by the fast path above.
		return cmpFloat(a.AsFloat(), b.AsFloat()), true
	case a.K == KindString && b.K == KindString:
		return strings.Compare(a.S, b.S), true
	case a.K == KindDate && b.K == KindDate:
		return cmpInt(a.I, b.I), true
	case a.K == KindBool && b.K == KindBool:
		return cmpInt(a.I, b.I), true
	}
	return 0, false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// Equal reports SQL equality (NULL = anything is unknown → false, ok=false).
func Equal(a, b Value) (eq bool, ok bool) {
	c, ok := Compare(a, b)
	return c == 0, ok
}

// Arithmetic errors.
var errBadOperand = fmt.Errorf("sqltypes: invalid operand types")

// Add evaluates a + b with numeric coercion and DATE+INTERVAL support.
func Add(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return NewInt(a.I + b.I), nil
	case a.IsNumeric() && b.IsNumeric():
		return NewFloat(a.AsFloat() + b.AsFloat()), nil
	case a.K == KindDate && b.K == KindInterval:
		return shiftDate(a, b, 1), nil
	case a.K == KindInterval && b.K == KindDate:
		return shiftDate(b, a, 1), nil
	}
	return Null, fmt.Errorf("%w: %s + %s", errBadOperand, a.K, b.K)
}

// Sub evaluates a - b.
func Sub(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	switch {
	case a.K == KindInt && b.K == KindInt:
		return NewInt(a.I - b.I), nil
	case a.IsNumeric() && b.IsNumeric():
		return NewFloat(a.AsFloat() - b.AsFloat()), nil
	case a.K == KindDate && b.K == KindInterval:
		return shiftDate(a, b, -1), nil
	case a.K == KindDate && b.K == KindDate:
		return NewInt(a.I - b.I), nil
	}
	return Null, fmt.Errorf("%w: %s - %s", errBadOperand, a.K, b.K)
}

func shiftDate(d, iv Value, sign int) Value {
	t := DateToTime(d)
	months := int(iv.F) * sign
	days := int(iv.I) * sign
	t = t.AddDate(0, months, days)
	return TimeToDate(t)
}

// Mul evaluates a * b.
func Mul(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if a.K == KindInt && b.K == KindInt {
		return NewInt(a.I * b.I), nil
	}
	if a.IsNumeric() && b.IsNumeric() {
		return NewFloat(a.AsFloat() * b.AsFloat()), nil
	}
	return Null, fmt.Errorf("%w: %s * %s", errBadOperand, a.K, b.K)
}

// Div evaluates a / b; SQL division by zero is an error, NULL propagates.
// INTEGER / INTEGER truncates toward zero (PostgreSQL semantics); any
// DECIMAL operand yields DECIMAL.
func Div(a, b Value) (Value, error) {
	if a.IsNull() || b.IsNull() {
		return Null, nil
	}
	if !a.IsNumeric() || !b.IsNumeric() {
		return Null, fmt.Errorf("%w: %s / %s", errBadOperand, a.K, b.K)
	}
	if a.K == KindInt && b.K == KindInt {
		if b.I == 0 {
			return Null, fmt.Errorf("sqltypes: division by zero")
		}
		return NewInt(a.I / b.I), nil
	}
	d := b.AsFloat()
	if d == 0 {
		return Null, fmt.Errorf("sqltypes: division by zero")
	}
	return NewFloat(a.AsFloat() / d), nil
}

// Neg evaluates -a.
func Neg(a Value) (Value, error) {
	switch a.K {
	case KindNull:
		return Null, nil
	case KindInt:
		return NewInt(-a.I), nil
	case KindFloat:
		return NewFloat(-a.F), nil
	}
	return Null, fmt.Errorf("%w: -%s", errBadOperand, a.K)
}

// AppendKey appends a canonical, collision-free encoding of v to key, used
// for hash-join and group-by keys. Numeric values that compare equal encode
// identically (integers widen to float encoding when mixed groups occur is
// avoided by encoding ints and floats with equal magnitude the same way).
func AppendKey(key []byte, v Value) []byte {
	switch v.K {
	case KindNull:
		return append(key, 'n')
	case KindInt:
		// Encode integers as floats so 1 and 1.0 group together.
		return appendFloatKey(append(key, 'f'), float64(v.I))
	case KindFloat:
		return appendFloatKey(append(key, 'f'), v.F)
	case KindString:
		key = append(key, 's')
		key = strconv.AppendInt(key, int64(len(v.S)), 10)
		key = append(key, ':')
		return append(key, v.S...)
	case KindBool:
		if v.I != 0 {
			return append(key, 't')
		}
		return append(key, 'F')
	case KindDate:
		key = append(key, 'd')
		return strconv.AppendInt(key, v.I, 10)
	}
	return append(key, '?')
}

func appendFloatKey(key []byte, f float64) []byte {
	bits := math.Float64bits(f)
	if f == 0 { // normalize -0 and +0
		bits = 0
	}
	// Single append keeps this inlinable in the key-building hot loops.
	return append(key,
		byte(bits), byte(bits>>8), byte(bits>>16), byte(bits>>24),
		byte(bits>>32), byte(bits>>40), byte(bits>>48), byte(bits>>56))
}

// Truthy converts a value used in a WHERE/HAVING context to (true, known).
func Truthy(v Value) (truth, known bool) {
	if v.IsNull() {
		return false, false
	}
	if v.K == KindBool {
		return v.I != 0, true
	}
	return false, true
}
