package sqltypes

import (
	"testing"
	"testing/quick"
)

func TestKindString(t *testing.T) {
	cases := map[Kind]string{
		KindNull: "NULL", KindInt: "INTEGER", KindFloat: "DECIMAL",
		KindString: "VARCHAR", KindBool: "BOOLEAN", KindDate: "DATE",
		KindInterval: "INTERVAL",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("Kind(%d).String() = %q, want %q", k, got, want)
		}
	}
}

func TestParseDateRoundTrip(t *testing.T) {
	for _, s := range []string{"1970-01-01", "1992-02-29", "1998-12-01", "2026-06-10"} {
		v, err := ParseDate(s)
		if err != nil {
			t.Fatalf("ParseDate(%q): %v", s, err)
		}
		if got := v.String(); got != s {
			t.Errorf("round trip %q -> %q", s, got)
		}
	}
	if _, err := ParseDate("not-a-date"); err == nil {
		t.Error("ParseDate accepted garbage")
	}
}

func TestDateEpoch(t *testing.T) {
	v := MustDate("1970-01-01")
	if v.I != 0 {
		t.Errorf("epoch day = %d, want 0", v.I)
	}
	v = MustDate("1970-01-02")
	if v.I != 1 {
		t.Errorf("epoch+1 day = %d, want 1", v.I)
	}
}

func TestCompareNumericCoercion(t *testing.T) {
	c, ok := Compare(NewInt(3), NewFloat(3.0))
	if !ok || c != 0 {
		t.Errorf("3 vs 3.0: cmp=%d ok=%v", c, ok)
	}
	c, ok = Compare(NewFloat(2.5), NewInt(3))
	if !ok || c != -1 {
		t.Errorf("2.5 vs 3: cmp=%d ok=%v", c, ok)
	}
}

func TestCompareNulls(t *testing.T) {
	if _, ok := Compare(Null, NewInt(1)); ok {
		t.Error("NULL comparison must be unknown")
	}
	if _, ok := Compare(NewString("a"), NewInt(1)); ok {
		t.Error("cross-kind comparison must be unknown")
	}
}

func TestArithmetic(t *testing.T) {
	check := func(got Value, err error, want Value) {
		t.Helper()
		if err != nil {
			t.Fatalf("unexpected error: %v", err)
		}
		if eq, ok := Equal(got, want); !ok || !eq {
			t.Errorf("got %v want %v", got, want)
		}
	}
	v, err := Add(NewInt(2), NewInt(3))
	check(v, err, NewInt(5))
	v, err = Sub(NewFloat(2.5), NewInt(1))
	check(v, err, NewFloat(1.5))
	v, err = Mul(NewInt(4), NewFloat(0.5))
	check(v, err, NewFloat(2))
	v, err = Div(NewInt(7), NewInt(2))
	check(v, err, NewInt(3)) // integer division truncates (PostgreSQL)
	v, err = Div(NewFloat(7), NewInt(2))
	check(v, err, NewFloat(3.5))
	if _, err := Div(NewInt(1), NewInt(0)); err == nil {
		t.Error("division by zero not reported")
	}
	if _, err := Div(NewFloat(1), NewFloat(0)); err == nil {
		t.Error("float division by zero not reported")
	}
}

func TestArithmeticNullPropagation(t *testing.T) {
	for _, op := range []func(Value, Value) (Value, error){Add, Sub, Mul, Div} {
		v, err := op(Null, NewInt(1))
		if err != nil || !v.IsNull() {
			t.Errorf("op(NULL, 1) = %v, %v; want NULL", v, err)
		}
	}
}

func TestDateIntervalArithmetic(t *testing.T) {
	d := MustDate("1998-12-01")
	minus90, err := Sub(d, NewInterval(90, 0))
	if err != nil {
		t.Fatal(err)
	}
	if got := minus90.String(); got != "1998-09-02" {
		t.Errorf("1998-12-01 - 90 days = %s, want 1998-09-02", got)
	}
	plus3m, err := Add(MustDate("1995-01-01"), NewInterval(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if got := plus3m.String(); got != "1995-04-01" {
		t.Errorf("1995-01-01 + 3 months = %s", got)
	}
	plus1y, err := Add(MustDate("1995-01-01"), NewInterval(0, 12))
	if err != nil {
		t.Fatal(err)
	}
	if got := plus1y.String(); got != "1996-01-01" {
		t.Errorf("1995-01-01 + 1 year = %s", got)
	}
	diff, err := Sub(MustDate("1970-01-10"), MustDate("1970-01-01"))
	if err != nil || diff.AsInt() != 9 {
		t.Errorf("date diff = %v, %v", diff, err)
	}
}

func TestSQLLiteral(t *testing.T) {
	if got := NewString("O'Brien").SQLLiteral(); got != "'O''Brien'" {
		t.Errorf("string literal = %s", got)
	}
	if got := MustDate("1994-01-01").SQLLiteral(); got != "DATE '1994-01-01'" {
		t.Errorf("date literal = %s", got)
	}
	if got := NewInt(42).SQLLiteral(); got != "42" {
		t.Errorf("int literal = %s", got)
	}
}

func TestAppendKeyIntFloatAgreement(t *testing.T) {
	// 1 and 1.0 must produce identical keys so they land in one group.
	a := AppendKey(nil, NewInt(1))
	b := AppendKey(nil, NewFloat(1.0))
	if string(a) != string(b) {
		t.Errorf("keys differ: %q vs %q", a, b)
	}
}

func TestAppendKeyInjective(t *testing.T) {
	// Property: distinct (string, string) pairs never collide because of the
	// length-prefixed encoding.
	f := func(a, b, c, d string) bool {
		k1 := AppendKey(AppendKey(nil, NewString(a)), NewString(b))
		k2 := AppendKey(AppendKey(nil, NewString(c)), NewString(d))
		if a == c && b == d {
			return string(k1) == string(k2)
		}
		return string(k1) != string(k2)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCompareAntisymmetric(t *testing.T) {
	f := func(a, b int64) bool {
		c1, ok1 := Compare(NewInt(a), NewInt(b))
		c2, ok2 := Compare(NewInt(b), NewInt(a))
		return ok1 && ok2 && c1 == -c2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAddSubInverse(t *testing.T) {
	f := func(a, b int32) bool {
		sum, err := Add(NewInt(int64(a)), NewInt(int64(b)))
		if err != nil {
			return false
		}
		back, err := Sub(sum, NewInt(int64(b)))
		if err != nil {
			return false
		}
		return back.I == int64(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTruthy(t *testing.T) {
	if tr, known := Truthy(NewBool(true)); !tr || !known {
		t.Error("true must be truthy/known")
	}
	if tr, known := Truthy(NewBool(false)); tr || !known {
		t.Error("false must be falsy/known")
	}
	if _, known := Truthy(Null); known {
		t.Error("NULL must be unknown")
	}
}
