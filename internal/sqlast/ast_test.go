package sqlast

import (
	"strings"
	"testing"

	"mtbase/internal/sqltypes"
)

func TestSelectStringClauses(t *testing.T) {
	sel := NewSelect()
	sel.Distinct = true
	sel.Items = []SelectItem{
		{Expr: &ColumnRef{Table: "e", Name: "name"}, Alias: "n"},
		{Star: true, StarTable: "r"},
	}
	sel.From = []TableExpr{
		&TableName{Name: "Employees", Alias: "e"},
		&DerivedTable{Sub: &Select{Items: []SelectItem{{Expr: NewIntLit(1)}}, Limit: -1}, Alias: "d"},
	}
	sel.Where = &BinaryExpr{Op: ">", L: &ColumnRef{Name: "age"}, R: NewIntLit(30)}
	sel.GroupBy = []Expr{&ColumnRef{Name: "n"}}
	sel.Having = &BinaryExpr{Op: ">", L: &FuncCall{Name: "COUNT", Star: true}, R: NewIntLit(1)}
	sel.OrderBy = []OrderItem{{Expr: &ColumnRef{Name: "n"}, Desc: true}}
	sel.Limit = 5
	got := sel.String()
	for _, want := range []string{
		"SELECT DISTINCT", "e.name AS n", "r.*", "Employees e",
		"(SELECT 1) AS d", "WHERE", "GROUP BY n", "HAVING", "COUNT(*)",
		"ORDER BY n DESC", "LIMIT 5",
	} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestJoinKindStrings(t *testing.T) {
	j := &JoinExpr{Kind: JoinLeftOuter,
		L:  &TableName{Name: "a"},
		R:  &TableName{Name: "b"},
		On: &BinaryExpr{Op: "=", L: &ColumnRef{Name: "x"}, R: &ColumnRef{Name: "y"}},
	}
	if got := j.String(); got != "a LEFT OUTER JOIN b ON (x = y)" {
		t.Errorf("join string: %s", got)
	}
	if JoinInner.String() != "JOIN" || JoinCross.String() != "CROSS JOIN" {
		t.Error("join kind strings")
	}
}

func TestExprStrings(t *testing.T) {
	cases := []struct {
		e    Expr
		want string
	}{
		{&UnaryExpr{Op: "NOT", X: NewIntLit(1)}, "(NOT 1)"},
		{&UnaryExpr{Op: "-", X: NewIntLit(2)}, "(-2)"},
		{&CaseExpr{Operand: &ColumnRef{Name: "x"},
			Whens: []CaseWhen{{Cond: NewIntLit(1), Then: NewStringLit("a")}},
			Else:  NewStringLit("b")}, "CASE x WHEN 1 THEN 'a' ELSE 'b' END"},
		{&InExpr{X: &ColumnRef{Name: "x"}, Not: true, List: []Expr{NewIntLit(1), NewIntLit(2)}}, "x NOT IN (1, 2)"},
		{&ExistsExpr{Not: true, Sub: &Select{Items: []SelectItem{{Expr: NewIntLit(1)}}, Limit: -1}}, "NOT EXISTS (SELECT 1)"},
		{&BetweenExpr{X: &ColumnRef{Name: "x"}, Lo: NewIntLit(1), Hi: NewIntLit(2), Not: true}, "(x NOT BETWEEN 1 AND 2)"},
		{&LikeExpr{X: &ColumnRef{Name: "x"}, Pattern: NewStringLit("a%"), Not: true}, "(x NOT LIKE 'a%')"},
		{&IsNullExpr{X: &ColumnRef{Name: "x"}, Not: true}, "(x IS NOT NULL)"},
		{&ExtractExpr{Field: "YEAR", X: &ColumnRef{Name: "d"}}, "EXTRACT(YEAR FROM d)"},
		{&SubstringExpr{X: &ColumnRef{Name: "s"}, From: NewIntLit(1), For: NewIntLit(2)}, "SUBSTRING(s FROM 1 FOR 2)"},
		{&IntervalExpr{N: 3, Unit: "MONTH"}, "INTERVAL '3' MONTH"},
		{&RowExpr{Exprs: []Expr{NewIntLit(1), &ColumnRef{Name: "t"}}}, "(1, t)"},
		{&Param{N: 2}, "$2"},
		{&FuncCall{Name: "COUNT", Distinct: true, Args: []Expr{&ColumnRef{Name: "x"}}}, "COUNT(DISTINCT x)"},
	}
	for _, c := range cases {
		if got := c.e.String(); got != c.want {
			t.Errorf("String() = %q, want %q", got, c.want)
		}
	}
}

func TestStatementStrings(t *testing.T) {
	g := &Grant{Privileges: []Privilege{PrivRead, PrivInsert}, Table: "T", Grantee: 42}
	if got := g.String(); got != "GRANT READ, INSERT ON T TO 42" {
		t.Errorf("grant: %s", got)
	}
	r := &Revoke{Privileges: []Privilege{PrivDelete}, GranteeAll: true}
	if got := r.String(); got != "REVOKE DELETE ON DATABASE FROM ALL" {
		t.Errorf("revoke: %s", got)
	}
	ss := &SetScope{Simple: []int64{1, 3}}
	if got := ss.String(); got != `SET SCOPE = "IN (1, 3)"` {
		t.Errorf("scope: %s", got)
	}
	ss = &SetScope{All: true}
	if got := ss.String(); got != `SET SCOPE = "IN ()"` {
		t.Errorf("all scope: %s", got)
	}
	up := &Update{Table: "t", Sets: []Assignment{{Column: "a", Expr: NewIntLit(1)}},
		Where: &BinaryExpr{Op: "=", L: &ColumnRef{Name: "b"}, R: NewIntLit(2)}}
	if got := up.String(); got != "UPDATE t SET a = 1 WHERE (b = 2)" {
		t.Errorf("update: %s", got)
	}
	del := &Delete{Table: "t"}
	if got := del.String(); got != "DELETE FROM t" {
		t.Errorf("delete: %s", got)
	}
	dv := &DropView{Name: "v"}
	if got := dv.String(); got != "DROP VIEW v" {
		t.Errorf("drop view: %s", got)
	}
}

func TestCloneExprIndependence(t *testing.T) {
	exprs := []Expr{
		&BinaryExpr{Op: "+", L: &ColumnRef{Name: "a"}, R: NewIntLit(1)},
		&CaseExpr{Whens: []CaseWhen{{Cond: NewIntLit(1), Then: NewIntLit(2)}}},
		&InExpr{X: &ColumnRef{Name: "a"}, Sub: &Select{Items: []SelectItem{{Expr: &ColumnRef{Name: "b"}}}, Limit: -1}},
		&RowExpr{Exprs: []Expr{&ColumnRef{Name: "a"}}},
		&SubstringExpr{X: &ColumnRef{Name: "s"}, From: NewIntLit(1)},
	}
	for _, e := range exprs {
		clone := CloneExpr(e)
		if clone.String() != e.String() {
			t.Errorf("clone differs: %s vs %s", clone, e)
		}
		// Mutate the clone's first column ref; original must not change.
		before := e.String()
		mutated := false
		TransformExpr(clone, func(n Expr) Expr {
			if cr, ok := n.(*ColumnRef); ok && !mutated {
				cr.Name = "zzz"
				mutated = true
			}
			return n
		})
		if e.String() != before {
			t.Errorf("mutating clone changed original: %s", e)
		}
	}
}

func TestAndExprs(t *testing.T) {
	if AndExprs(nil, nil) != nil {
		t.Error("all-nil must give nil")
	}
	one := NewIntLit(1)
	if got := AndExprs(nil, one, nil); got != one {
		t.Error("single expr must pass through")
	}
	got := AndExprs(NewIntLit(1), NewIntLit(2), NewIntLit(3))
	if got.String() != "((1 AND 2) AND 3)" {
		t.Errorf("and chain: %s", got)
	}
}

func TestBaseTablesOf(t *testing.T) {
	from := []TableExpr{
		&TableName{Name: "a"},
		&JoinExpr{Kind: JoinInner,
			L: &TableName{Name: "b", Alias: "bb"},
			R: &JoinExpr{Kind: JoinLeftOuter, L: &TableName{Name: "c"}, R: &TableName{Name: "d"}},
		},
		&DerivedTable{Sub: &Select{Items: []SelectItem{{Expr: NewIntLit(1)}},
			From: []TableExpr{&TableName{Name: "hidden"}}, Limit: -1}, Alias: "x"},
	}
	names := []string{}
	for _, t := range BaseTablesOf(from) {
		names = append(names, t.Name)
	}
	want := "a,b,c,d"
	if strings.Join(names, ",") != want {
		t.Errorf("base tables = %v, want %s (derived tables excluded)", names, want)
	}
}

func TestColumnRefsOfSkipsSubqueries(t *testing.T) {
	e := &BinaryExpr{Op: "AND",
		L: &BinaryExpr{Op: "=", L: &ColumnRef{Name: "a"}, R: &ColumnRef{Table: "t", Name: "b"}},
		R: &ExistsExpr{Sub: &Select{Items: []SelectItem{{Expr: &ColumnRef{Name: "inner_col"}}}, Limit: -1}},
	}
	refs := ColumnRefsOf(e)
	if len(refs) != 2 {
		t.Errorf("refs = %v", refs)
	}
	subs := SubqueriesOf(e)
	if len(subs) != 1 {
		t.Errorf("subqueries = %d", len(subs))
	}
}

func TestConstraintStrings(t *testing.T) {
	pk := Constraint{Kind: ConstraintPrimaryKey, Name: "pk", Columns: []string{"a", "b"}}
	if got := pk.String(); got != "CONSTRAINT pk PRIMARY KEY (a, b)" {
		t.Errorf("pk: %s", got)
	}
	fk := Constraint{Kind: ConstraintForeignKey, Name: "fk", Columns: []string{"a"},
		RefTable: "r", RefColumns: []string{"x"}}
	if got := fk.String(); got != "CONSTRAINT fk FOREIGN KEY (a) REFERENCES r (x)" {
		t.Errorf("fk: %s", got)
	}
	ck := Constraint{Kind: ConstraintCheck, Name: "ck",
		Check: &BinaryExpr{Op: ">", L: &ColumnRef{Name: "a"}, R: NewIntLit(0)}}
	if got := ck.String(); got != "CONSTRAINT ck CHECK ((a > 0))" {
		t.Errorf("check: %s", got)
	}
}

func TestLiteralHelpers(t *testing.T) {
	if NewIntLit(7).Val.I != 7 {
		t.Error("NewIntLit")
	}
	if NewStringLit("x").Val.S != "x" {
		t.Error("NewStringLit")
	}
	lit := &Literal{Val: sqltypes.MustDate("1994-01-01")}
	if lit.String() != "DATE '1994-01-01'" {
		t.Errorf("date literal: %s", lit)
	}
}

func TestTypeNameString(t *testing.T) {
	tn := TypeName{Name: "DECIMAL", Args: []int{15, 2}}
	if tn.String() != "DECIMAL(15,2)" {
		t.Errorf("type: %s", tn)
	}
	if (TypeName{Name: "DATE"}).String() != "DATE" {
		t.Error("bare type")
	}
}

func TestGeneralityComparabilityStrings(t *testing.T) {
	if Global.String() != "GLOBAL" || TenantSpecific.String() != "SPECIFIC" {
		t.Error("generality strings")
	}
	if Comparable.String() != "COMPARABLE" || Convertible.String() != "CONVERTIBLE" || Specific.String() != "SPECIFIC" {
		t.Error("comparability strings")
	}
}
