// Package sqlast defines the abstract syntax tree for the SQL dialect used
// throughout MTBase, including the MTSQL extensions from the paper (table
// generality, attribute comparability, conversion-function annotations,
// SET SCOPE, and GRANT/REVOKE with C/D semantics). Every node renders back
// to SQL text via String(): the middleware communicates with the backing
// DBMS "by the means of pure SQL" (§3), so rewritten ASTs must serialize.
package sqlast

import (
	"fmt"
	"strconv"
	"strings"

	"mtbase/internal/sqltypes"
)

// Node is any AST node.
type Node interface{ String() string }

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Statement is a top-level statement.
type Statement interface {
	Node
	stmtNode()
}

// TableExpr is a FROM-clause item.
type TableExpr interface {
	Node
	tableExprNode()
}

// ---------------------------------------------------------------- exprs

// ColumnRef references a column, optionally qualified by table or alias.
type ColumnRef struct {
	Table string // optional qualifier
	Name  string
}

func (*ColumnRef) exprNode() {}

func (c *ColumnRef) String() string {
	if c.Table != "" {
		return c.Table + "." + c.Name
	}
	return c.Name
}

// Literal is a constant value.
type Literal struct{ Val sqltypes.Value }

func (*Literal) exprNode() {}

func (l *Literal) String() string { return l.Val.SQLLiteral() }

// NewIntLit is shorthand for an integer literal.
func NewIntLit(i int64) *Literal { return &Literal{Val: sqltypes.NewInt(i)} }

// NewStringLit is shorthand for a string literal.
func NewStringLit(s string) *Literal { return &Literal{Val: sqltypes.NewString(s)} }

// Param is a positional parameter $n. Inside a SQL-defined function body it
// names the n-th function argument; in a client statement it is a bind-
// parameter slot filled per execution (`?` placeholders parse to Params
// numbered left to right). The innermost UDF parameter frame wins when both
// interpretations are possible, exactly like the interpreter's scope walk.
type Param struct{ N int }

func (*Param) exprNode() {}

func (p *Param) String() string { return "$" + strconv.Itoa(p.N) }

// BinaryExpr applies a binary operator. Op is one of
// + - * / % = <> < <= > >= AND OR ||.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

func (*BinaryExpr) exprNode() {}

func (b *BinaryExpr) String() string {
	return "(" + b.L.String() + " " + b.Op + " " + b.R.String() + ")"
}

// UnaryExpr applies NOT or unary minus.
type UnaryExpr struct {
	Op string // "NOT" or "-"
	X  Expr
}

func (*UnaryExpr) exprNode() {}

func (u *UnaryExpr) String() string {
	if u.Op == "NOT" {
		return "(NOT " + u.X.String() + ")"
	}
	return "(" + u.Op + u.X.String() + ")"
}

// FuncCall is a scalar, aggregate or conversion-function call.
// COUNT(*) is encoded with Star=true and empty Args.
type FuncCall struct {
	Name     string
	Distinct bool
	Star     bool
	Args     []Expr
}

func (*FuncCall) exprNode() {}

func (f *FuncCall) String() string {
	var sb strings.Builder
	sb.WriteString(f.Name)
	sb.WriteByte('(')
	if f.Distinct {
		sb.WriteString("DISTINCT ")
	}
	if f.Star {
		sb.WriteByte('*')
	}
	for i, a := range f.Args {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.String())
	}
	sb.WriteByte(')')
	return sb.String()
}

// CaseExpr is a searched or simple CASE.
type CaseExpr struct {
	Operand Expr // nil for searched CASE
	Whens   []CaseWhen
	Else    Expr // may be nil
}

// CaseWhen is one WHEN ... THEN ... arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

func (*CaseExpr) exprNode() {}

func (c *CaseExpr) String() string {
	var sb strings.Builder
	sb.WriteString("CASE")
	if c.Operand != nil {
		sb.WriteByte(' ')
		sb.WriteString(c.Operand.String())
	}
	for _, w := range c.Whens {
		sb.WriteString(" WHEN ")
		sb.WriteString(w.Cond.String())
		sb.WriteString(" THEN ")
		sb.WriteString(w.Then.String())
	}
	if c.Else != nil {
		sb.WriteString(" ELSE ")
		sb.WriteString(c.Else.String())
	}
	sb.WriteString(" END")
	return sb.String()
}

// RowExpr is a row value constructor (a, b, ...), usable as the left side
// of IN — the rewriter produces (key, ttid) IN (SELECT key, ttid ...) for
// tenant-specific membership predicates.
type RowExpr struct{ Exprs []Expr }

func (*RowExpr) exprNode() {}

func (r *RowExpr) String() string {
	parts := make([]string, len(r.Exprs))
	for i, e := range r.Exprs {
		parts[i] = e.String()
	}
	return "(" + strings.Join(parts, ", ") + ")"
}

// InExpr is X [NOT] IN (list) or X [NOT] IN (subquery).
type InExpr struct {
	X    Expr
	Not  bool
	List []Expr  // nil when Sub is set
	Sub  *Select // nil when List is set
}

func (*InExpr) exprNode() {}

func (in *InExpr) String() string {
	var sb strings.Builder
	sb.WriteString(in.X.String())
	if in.Not {
		sb.WriteString(" NOT")
	}
	sb.WriteString(" IN (")
	if in.Sub != nil {
		sb.WriteString(in.Sub.String())
	} else {
		for i, e := range in.List {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
	}
	sb.WriteByte(')')
	return sb.String()
}

// ExistsExpr is [NOT] EXISTS (subquery).
type ExistsExpr struct {
	Not bool
	Sub *Select
}

func (*ExistsExpr) exprNode() {}

func (e *ExistsExpr) String() string {
	if e.Not {
		return "NOT EXISTS (" + e.Sub.String() + ")"
	}
	return "EXISTS (" + e.Sub.String() + ")"
}

// BetweenExpr is X [NOT] BETWEEN Lo AND Hi.
type BetweenExpr struct {
	X, Lo, Hi Expr
	Not       bool
}

func (*BetweenExpr) exprNode() {}

func (b *BetweenExpr) String() string {
	not := ""
	if b.Not {
		not = " NOT"
	}
	return "(" + b.X.String() + not + " BETWEEN " + b.Lo.String() + " AND " + b.Hi.String() + ")"
}

// LikeExpr is X [NOT] LIKE pattern.
type LikeExpr struct {
	X, Pattern Expr
	Not        bool
}

func (*LikeExpr) exprNode() {}

func (l *LikeExpr) String() string {
	not := ""
	if l.Not {
		not = " NOT"
	}
	return "(" + l.X.String() + not + " LIKE " + l.Pattern.String() + ")"
}

// IsNullExpr is X IS [NOT] NULL.
type IsNullExpr struct {
	X   Expr
	Not bool
}

func (*IsNullExpr) exprNode() {}

func (i *IsNullExpr) String() string {
	if i.Not {
		return "(" + i.X.String() + " IS NOT NULL)"
	}
	return "(" + i.X.String() + " IS NULL)"
}

// SubqueryExpr is a scalar subquery.
type SubqueryExpr struct{ Sub *Select }

func (*SubqueryExpr) exprNode() {}

func (s *SubqueryExpr) String() string { return "(" + s.Sub.String() + ")" }

// ExtractExpr is EXTRACT(field FROM x); field is YEAR, MONTH or DAY.
type ExtractExpr struct {
	Field string
	X     Expr
}

func (*ExtractExpr) exprNode() {}

func (e *ExtractExpr) String() string {
	return "EXTRACT(" + e.Field + " FROM " + e.X.String() + ")"
}

// SubstringExpr is SUBSTRING(x FROM start [FOR length]); start is 1-based.
type SubstringExpr struct {
	X, From, For Expr // For may be nil
}

func (*SubstringExpr) exprNode() {}

func (s *SubstringExpr) String() string {
	out := "SUBSTRING(" + s.X.String() + " FROM " + s.From.String()
	if s.For != nil {
		out += " FOR " + s.For.String()
	}
	return out + ")"
}

// IntervalExpr is INTERVAL 'n' unit.
type IntervalExpr struct {
	N    int64
	Unit string // DAY, MONTH, YEAR
}

func (*IntervalExpr) exprNode() {}

func (iv *IntervalExpr) String() string {
	return fmt.Sprintf("INTERVAL '%d' %s", iv.N, iv.Unit)
}

// ---------------------------------------------------------------- select

// SelectItem is one projection in the SELECT list.
type SelectItem struct {
	Star      bool   // SELECT * or t.*
	StarTable string // qualifier for t.*
	Expr      Expr
	Alias     string
}

func (it SelectItem) String() string {
	if it.Star {
		if it.StarTable != "" {
			return it.StarTable + ".*"
		}
		return "*"
	}
	if it.Alias != "" {
		return it.Expr.String() + " AS " + it.Alias
	}
	return it.Expr.String()
}

// OrderItem is one ORDER BY key.
type OrderItem struct {
	Expr Expr
	Desc bool
}

func (o OrderItem) String() string {
	if o.Desc {
		return o.Expr.String() + " DESC"
	}
	return o.Expr.String()
}

// Select is a (sub)query.
type Select struct {
	Distinct bool
	Items    []SelectItem
	From     []TableExpr
	Where    Expr // may be nil
	GroupBy  []Expr
	Having   Expr // may be nil
	OrderBy  []OrderItem
	Limit    int64 // -1 when absent
}

func (*Select) exprNode() {} // usable as a subquery operand where needed
func (*Select) stmtNode() {}

func (s *Select) String() string {
	var sb strings.Builder
	sb.WriteString("SELECT ")
	if s.Distinct {
		sb.WriteString("DISTINCT ")
	}
	for i, it := range s.Items {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(it.String())
	}
	if len(s.From) > 0 {
		sb.WriteString(" FROM ")
		for i, t := range s.From {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(t.String())
		}
	}
	if s.Where != nil {
		sb.WriteString(" WHERE ")
		sb.WriteString(s.Where.String())
	}
	if len(s.GroupBy) > 0 {
		sb.WriteString(" GROUP BY ")
		for i, g := range s.GroupBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(g.String())
		}
	}
	if s.Having != nil {
		sb.WriteString(" HAVING ")
		sb.WriteString(s.Having.String())
	}
	if len(s.OrderBy) > 0 {
		sb.WriteString(" ORDER BY ")
		for i, o := range s.OrderBy {
			if i > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(o.String())
		}
	}
	if s.Limit >= 0 {
		fmt.Fprintf(&sb, " LIMIT %d", s.Limit)
	}
	return sb.String()
}

// NewSelect returns an empty Select with no LIMIT.
func NewSelect() *Select { return &Select{Limit: -1} }

// TableName references a base table or view in FROM.
type TableName struct {
	Name  string
	Alias string
}

func (*TableName) tableExprNode() {}

func (t *TableName) String() string {
	if t.Alias != "" {
		return t.Name + " " + t.Alias
	}
	return t.Name
}

// Binding returns the name this table is referred to by (alias or name).
func (t *TableName) Binding() string {
	if t.Alias != "" {
		return t.Alias
	}
	return t.Name
}

// DerivedTable is a subquery in FROM with a mandatory alias.
type DerivedTable struct {
	Sub   *Select
	Alias string
}

func (*DerivedTable) tableExprNode() {}

func (d *DerivedTable) String() string {
	return "(" + d.Sub.String() + ") AS " + d.Alias
}

// JoinKind distinguishes join types.
type JoinKind uint8

// Join kinds.
const (
	JoinInner JoinKind = iota
	JoinLeftOuter
	JoinCross
)

func (k JoinKind) String() string {
	switch k {
	case JoinInner:
		return "JOIN"
	case JoinLeftOuter:
		return "LEFT OUTER JOIN"
	case JoinCross:
		return "CROSS JOIN"
	}
	return "JOIN"
}

// JoinExpr is an explicit join in FROM.
type JoinExpr struct {
	Kind JoinKind
	L, R TableExpr
	On   Expr // nil for CROSS JOIN
}

func (*JoinExpr) tableExprNode() {}

func (j *JoinExpr) String() string {
	s := j.L.String() + " " + j.Kind.String() + " " + j.R.String()
	if j.On != nil {
		s += " ON " + j.On.String()
	}
	return s
}
