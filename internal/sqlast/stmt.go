package sqlast

import (
	"fmt"
	"strings"
)

// ---------------------------------------------------------------- DDL

// Generality is MTSQL table generality (§2.2): global tables hold common
// knowledge shared by all tenants; tenant-specific tables hold per-tenant
// rows distinguished by the invisible ttid meta column.
type Generality uint8

// Table generalities. Tables default to global.
const (
	Global Generality = iota
	TenantSpecific
)

func (g Generality) String() string {
	if g == TenantSpecific {
		return "SPECIFIC"
	}
	return "GLOBAL"
}

// Comparability is MTSQL attribute comparability (§2.2, Table 1).
type Comparability uint8

// Attribute comparabilities.
const (
	// Comparable attributes compare directly across tenants.
	Comparable Comparability = iota
	// Convertible attributes need a conversion-function pair first.
	Convertible
	// Specific attributes must never be compared across tenants.
	Specific
)

func (c Comparability) String() string {
	switch c {
	case Comparable:
		return "COMPARABLE"
	case Convertible:
		return "CONVERTIBLE"
	case Specific:
		return "SPECIFIC"
	}
	return "COMPARABLE"
}

// TypeName is a column type with optional size arguments,
// e.g. VARCHAR(25) or DECIMAL(15,2).
type TypeName struct {
	Name string // upper-case base name
	Args []int
}

func (t TypeName) String() string {
	if len(t.Args) == 0 {
		return t.Name
	}
	parts := make([]string, len(t.Args))
	for i, a := range t.Args {
		parts[i] = fmt.Sprintf("%d", a)
	}
	return t.Name + "(" + strings.Join(parts, ",") + ")"
}

// ColumnDef is one column in CREATE TABLE, carrying the MTSQL
// comparability and, for convertible attributes, the conversion pair names.
type ColumnDef struct {
	Name          string
	Type          TypeName
	NotNull       bool
	Comparability Comparability
	ToUniversal   string // conversion function names, set iff Convertible
	FromUniversal string
}

func (c ColumnDef) String() string {
	var sb strings.Builder
	sb.WriteString(c.Name)
	sb.WriteByte(' ')
	sb.WriteString(c.Type.String())
	if c.NotNull {
		sb.WriteString(" NOT NULL")
	}
	sb.WriteByte(' ')
	sb.WriteString(c.Comparability.String())
	if c.Comparability == Convertible {
		sb.WriteString(" @" + c.ToUniversal + " @" + c.FromUniversal)
	}
	return sb.String()
}

// ConstraintKind distinguishes table constraints.
type ConstraintKind uint8

// Constraint kinds.
const (
	ConstraintPrimaryKey ConstraintKind = iota
	ConstraintForeignKey
	ConstraintCheck
)

// Constraint is a table constraint.
type Constraint struct {
	Kind       ConstraintKind
	Name       string
	Columns    []string // PK or FK columns
	RefTable   string   // FK target
	RefColumns []string
	Check      Expr // CHECK expression
}

func (c Constraint) String() string {
	switch c.Kind {
	case ConstraintPrimaryKey:
		return fmt.Sprintf("CONSTRAINT %s PRIMARY KEY (%s)", c.Name, strings.Join(c.Columns, ", "))
	case ConstraintForeignKey:
		return fmt.Sprintf("CONSTRAINT %s FOREIGN KEY (%s) REFERENCES %s (%s)",
			c.Name, strings.Join(c.Columns, ", "), c.RefTable, strings.Join(c.RefColumns, ", "))
	case ConstraintCheck:
		return fmt.Sprintf("CONSTRAINT %s CHECK (%s)", c.Name, c.Check.String())
	}
	return ""
}

// CreateTable is CREATE TABLE with MTSQL generality/comparability.
type CreateTable struct {
	Name        string
	Generality  Generality
	Columns     []ColumnDef
	Constraints []Constraint
}

func (*CreateTable) stmtNode() {}

func (c *CreateTable) String() string {
	var sb strings.Builder
	sb.WriteString("CREATE TABLE ")
	sb.WriteString(c.Name)
	if c.Generality == TenantSpecific {
		sb.WriteString(" SPECIFIC")
	}
	sb.WriteString(" (")
	for i, col := range c.Columns {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(col.String())
	}
	for _, con := range c.Constraints {
		sb.WriteString(", ")
		sb.WriteString(con.String())
	}
	sb.WriteString(")")
	return sb.String()
}

// CreateView is CREATE VIEW name AS select.
type CreateView struct {
	Name string
	Sub  *Select
}

func (*CreateView) stmtNode() {}

func (c *CreateView) String() string {
	return "CREATE VIEW " + c.Name + " AS " + c.Sub.String()
}

// CreateFunction is a SQL-bodied scalar function (the paper's conversion
// UDFs, Listings 4–7). The body is a single SELECT with $n parameters.
type CreateFunction struct {
	Name       string
	ParamTypes []TypeName
	ReturnType TypeName
	Body       *Select
	Immutable  bool
}

func (*CreateFunction) stmtNode() {}

func (c *CreateFunction) String() string {
	params := make([]string, len(c.ParamTypes))
	for i, p := range c.ParamTypes {
		params[i] = p.String()
	}
	s := fmt.Sprintf("CREATE FUNCTION %s (%s) RETURNS %s AS '%s' LANGUAGE SQL",
		c.Name, strings.Join(params, ", "), c.ReturnType.String(), c.Body.String())
	if c.Immutable {
		s += " IMMUTABLE"
	}
	return s
}

// DropTable / DropView drop schema objects.
type DropTable struct{ Name string }

func (*DropTable) stmtNode() {}

func (d *DropTable) String() string { return "DROP TABLE " + d.Name }

// DropView drops a view.
type DropView struct{ Name string }

func (*DropView) stmtNode() {}

func (d *DropView) String() string { return "DROP VIEW " + d.Name }

// ---------------------------------------------------------------- DML

// Insert is INSERT INTO t [(cols)] VALUES (...),... or INSERT ... SELECT.
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Sub     *Select // nil unless INSERT ... SELECT
}

func (*Insert) stmtNode() {}

func (i *Insert) String() string {
	var sb strings.Builder
	sb.WriteString("INSERT INTO ")
	sb.WriteString(i.Table)
	if len(i.Columns) > 0 {
		sb.WriteString(" (" + strings.Join(i.Columns, ", ") + ")")
	}
	if i.Sub != nil {
		sb.WriteString(" " + i.Sub.String())
		return sb.String()
	}
	sb.WriteString(" VALUES ")
	for r, row := range i.Rows {
		if r > 0 {
			sb.WriteString(", ")
		}
		sb.WriteByte('(')
		for c, e := range row {
			if c > 0 {
				sb.WriteString(", ")
			}
			sb.WriteString(e.String())
		}
		sb.WriteByte(')')
	}
	return sb.String()
}

// Assignment is one SET col = expr in UPDATE.
type Assignment struct {
	Column string
	Expr   Expr
}

// Update is UPDATE t SET ... [WHERE ...].
type Update struct {
	Table string
	Sets  []Assignment
	Where Expr
}

func (*Update) stmtNode() {}

func (u *Update) String() string {
	var sb strings.Builder
	sb.WriteString("UPDATE ")
	sb.WriteString(u.Table)
	sb.WriteString(" SET ")
	for i, a := range u.Sets {
		if i > 0 {
			sb.WriteString(", ")
		}
		sb.WriteString(a.Column + " = " + a.Expr.String())
	}
	if u.Where != nil {
		sb.WriteString(" WHERE " + u.Where.String())
	}
	return sb.String()
}

// Delete is DELETE FROM t [WHERE ...].
type Delete struct {
	Table string
	Where Expr
}

func (*Delete) stmtNode() {}

func (d *Delete) String() string {
	s := "DELETE FROM " + d.Table
	if d.Where != nil {
		s += " WHERE " + d.Where.String()
	}
	return s
}

// ---------------------------------------------------------------- DCL

// Privilege is an MTSQL access privilege (§2.3).
type Privilege string

// Privileges.
const (
	PrivRead   Privilege = "READ"
	PrivInsert Privilege = "INSERT"
	PrivUpdate Privilege = "UPDATE"
	PrivDelete Privilege = "DELETE"
)

// Grant is the MTSQL GRANT statement: privileges on a table (or the whole
// database when Table is empty) granted to a tenant, interpreted w.r.t. C.
// GranteeAll means GRANT ... TO ALL, interpreted w.r.t. D.
type Grant struct {
	Privileges []Privilege
	Table      string // empty = database
	Grantee    int64  // ttid
	GranteeAll bool
}

func (*Grant) stmtNode() {}

func (g *Grant) String() string {
	privs := make([]string, len(g.Privileges))
	for i, p := range g.Privileges {
		privs[i] = string(p)
	}
	on := "DATABASE"
	if g.Table != "" {
		on = g.Table
	}
	to := fmt.Sprintf("%d", g.Grantee)
	if g.GranteeAll {
		to = "ALL"
	}
	return fmt.Sprintf("GRANT %s ON %s TO %s", strings.Join(privs, ", "), on, to)
}

// Revoke is the MTSQL REVOKE statement.
type Revoke struct {
	Privileges []Privilege
	Table      string
	Grantee    int64
	GranteeAll bool
}

func (*Revoke) stmtNode() {}

func (r *Revoke) String() string {
	privs := make([]string, len(r.Privileges))
	for i, p := range r.Privileges {
		privs[i] = string(p)
	}
	on := "DATABASE"
	if r.Table != "" {
		on = r.Table
	}
	to := fmt.Sprintf("%d", r.Grantee)
	if r.GranteeAll {
		to = "ALL"
	}
	return fmt.Sprintf("REVOKE %s ON %s FROM %s", strings.Join(privs, ", "), on, to)
}

// ---------------------------------------------------------------- MTSQL

// SetScope is the MTSQL SET SCOPE statement (§2.1). Exactly one of the
// fields describes the scope:
//   - Simple with All=false: SET SCOPE = "IN (1,3,42)"
//   - Simple with All=true (empty IN list): all tenants in the database
//   - Complex: SET SCOPE = "FROM ... WHERE ..." — every tenant owning at
//     least one qualifying record is in D.
type SetScope struct {
	Simple  []int64
	All     bool
	Complex *ScopeQuery
}

// ScopeQuery is the FROM/WHERE of a complex scope.
type ScopeQuery struct {
	From  []TableExpr
	Where Expr // may be nil
}

func (*SetScope) stmtNode() {}

func (s *SetScope) String() string {
	if s.Complex != nil {
		froms := make([]string, len(s.Complex.From))
		for i, f := range s.Complex.From {
			froms[i] = f.String()
		}
		out := "SET SCOPE = \"FROM " + strings.Join(froms, ", ")
		if s.Complex.Where != nil {
			out += " WHERE " + s.Complex.Where.String()
		}
		return out + "\""
	}
	if s.All {
		return "SET SCOPE = \"IN ()\""
	}
	ids := make([]string, len(s.Simple))
	for i, id := range s.Simple {
		ids[i] = fmt.Sprintf("%d", id)
	}
	return "SET SCOPE = \"IN (" + strings.Join(ids, ", ") + ")\""
}
