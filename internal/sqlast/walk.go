package sqlast

// This file provides deep cloning and structural traversal of the AST.
// The rewrite algorithm (internal/rewrite) and the optimizer passes
// (internal/optimizer) are pure AST→AST functions; they clone before
// mutating so callers can keep the original statement.

// CloneExpr returns a deep copy of e. A nil expression clones to nil.
func CloneExpr(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ColumnRef:
		c := *x
		return &c
	case *Literal:
		c := *x
		return &c
	case *Param:
		c := *x
		return &c
	case *BinaryExpr:
		return &BinaryExpr{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *UnaryExpr:
		return &UnaryExpr{Op: x.Op, X: CloneExpr(x.X)}
	case *FuncCall:
		args := make([]Expr, len(x.Args))
		for i, a := range x.Args {
			args[i] = CloneExpr(a)
		}
		return &FuncCall{Name: x.Name, Distinct: x.Distinct, Star: x.Star, Args: args}
	case *CaseExpr:
		whens := make([]CaseWhen, len(x.Whens))
		for i, w := range x.Whens {
			whens[i] = CaseWhen{Cond: CloneExpr(w.Cond), Then: CloneExpr(w.Then)}
		}
		return &CaseExpr{Operand: CloneExpr(x.Operand), Whens: whens, Else: CloneExpr(x.Else)}
	case *InExpr:
		var list []Expr
		if x.List != nil {
			list = make([]Expr, len(x.List))
			for i, it := range x.List {
				list[i] = CloneExpr(it)
			}
		}
		return &InExpr{X: CloneExpr(x.X), Not: x.Not, List: list, Sub: CloneSelect(x.Sub)}
	case *ExistsExpr:
		return &ExistsExpr{Not: x.Not, Sub: CloneSelect(x.Sub)}
	case *BetweenExpr:
		return &BetweenExpr{X: CloneExpr(x.X), Lo: CloneExpr(x.Lo), Hi: CloneExpr(x.Hi), Not: x.Not}
	case *LikeExpr:
		return &LikeExpr{X: CloneExpr(x.X), Pattern: CloneExpr(x.Pattern), Not: x.Not}
	case *IsNullExpr:
		return &IsNullExpr{X: CloneExpr(x.X), Not: x.Not}
	case *SubqueryExpr:
		return &SubqueryExpr{Sub: CloneSelect(x.Sub)}
	case *RowExpr:
		exprs := make([]Expr, len(x.Exprs))
		for i, e := range x.Exprs {
			exprs[i] = CloneExpr(e)
		}
		return &RowExpr{Exprs: exprs}
	case *ExtractExpr:
		return &ExtractExpr{Field: x.Field, X: CloneExpr(x.X)}
	case *SubstringExpr:
		return &SubstringExpr{X: CloneExpr(x.X), From: CloneExpr(x.From), For: CloneExpr(x.For)}
	case *IntervalExpr:
		c := *x
		return &c
	case *Select:
		return CloneSelect(x)
	}
	panic("sqlast: CloneExpr: unhandled node type")
}

// CloneSelect returns a deep copy of s; nil clones to nil.
func CloneSelect(s *Select) *Select {
	if s == nil {
		return nil
	}
	out := &Select{
		Distinct: s.Distinct,
		Limit:    s.Limit,
	}
	out.Items = make([]SelectItem, len(s.Items))
	for i, it := range s.Items {
		out.Items[i] = SelectItem{Star: it.Star, StarTable: it.StarTable, Expr: CloneExpr(it.Expr), Alias: it.Alias}
	}
	out.From = make([]TableExpr, len(s.From))
	for i, t := range s.From {
		out.From[i] = CloneTableExpr(t)
	}
	out.Where = CloneExpr(s.Where)
	out.GroupBy = make([]Expr, len(s.GroupBy))
	for i, g := range s.GroupBy {
		out.GroupBy[i] = CloneExpr(g)
	}
	out.Having = CloneExpr(s.Having)
	out.OrderBy = make([]OrderItem, len(s.OrderBy))
	for i, o := range s.OrderBy {
		out.OrderBy[i] = OrderItem{Expr: CloneExpr(o.Expr), Desc: o.Desc}
	}
	return out
}

// CloneTableExpr returns a deep copy of a FROM item.
func CloneTableExpr(t TableExpr) TableExpr {
	switch x := t.(type) {
	case *TableName:
		c := *x
		return &c
	case *DerivedTable:
		return &DerivedTable{Sub: CloneSelect(x.Sub), Alias: x.Alias}
	case *JoinExpr:
		return &JoinExpr{Kind: x.Kind, L: CloneTableExpr(x.L), R: CloneTableExpr(x.R), On: CloneExpr(x.On)}
	}
	panic("sqlast: CloneTableExpr: unhandled node type")
}

// TransformExpr rewrites e bottom-up: children are transformed first, then
// f is applied to the (rebuilt) node and its result replaces the node.
// Subqueries (*Select) are NOT entered — the rewrite algorithm recurses
// into subqueries explicitly, per Algorithm 1 of the paper.
func TransformExpr(e Expr, f func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *ColumnRef, *Literal, *Param, *IntervalExpr, *Select:
		// leaves (Select is a subquery boundary)
	case *BinaryExpr:
		x.L = TransformExpr(x.L, f)
		x.R = TransformExpr(x.R, f)
	case *UnaryExpr:
		x.X = TransformExpr(x.X, f)
	case *FuncCall:
		for i, a := range x.Args {
			x.Args[i] = TransformExpr(a, f)
		}
	case *CaseExpr:
		x.Operand = TransformExpr(x.Operand, f)
		for i := range x.Whens {
			x.Whens[i].Cond = TransformExpr(x.Whens[i].Cond, f)
			x.Whens[i].Then = TransformExpr(x.Whens[i].Then, f)
		}
		x.Else = TransformExpr(x.Else, f)
	case *InExpr:
		x.X = TransformExpr(x.X, f)
		for i, it := range x.List {
			x.List[i] = TransformExpr(it, f)
		}
	case *ExistsExpr:
		// subquery boundary
	case *BetweenExpr:
		x.X = TransformExpr(x.X, f)
		x.Lo = TransformExpr(x.Lo, f)
		x.Hi = TransformExpr(x.Hi, f)
	case *LikeExpr:
		x.X = TransformExpr(x.X, f)
		x.Pattern = TransformExpr(x.Pattern, f)
	case *IsNullExpr:
		x.X = TransformExpr(x.X, f)
	case *SubqueryExpr:
		// subquery boundary
	case *RowExpr:
		for i, it := range x.Exprs {
			x.Exprs[i] = TransformExpr(it, f)
		}
	case *ExtractExpr:
		x.X = TransformExpr(x.X, f)
	case *SubstringExpr:
		x.X = TransformExpr(x.X, f)
		x.From = TransformExpr(x.From, f)
		x.For = TransformExpr(x.For, f)
	}
	return f(e)
}

// WalkExpr visits e and its children pre-order; if f returns false the
// children of the current node are skipped. Subqueries are not entered.
func WalkExpr(e Expr, f func(Expr) bool) {
	if e == nil || !f(e) {
		return
	}
	switch x := e.(type) {
	case *BinaryExpr:
		WalkExpr(x.L, f)
		WalkExpr(x.R, f)
	case *UnaryExpr:
		WalkExpr(x.X, f)
	case *FuncCall:
		for _, a := range x.Args {
			WalkExpr(a, f)
		}
	case *CaseExpr:
		WalkExpr(x.Operand, f)
		for _, w := range x.Whens {
			WalkExpr(w.Cond, f)
			WalkExpr(w.Then, f)
		}
		WalkExpr(x.Else, f)
	case *InExpr:
		WalkExpr(x.X, f)
		for _, it := range x.List {
			WalkExpr(it, f)
		}
	case *BetweenExpr:
		WalkExpr(x.X, f)
		WalkExpr(x.Lo, f)
		WalkExpr(x.Hi, f)
	case *LikeExpr:
		WalkExpr(x.X, f)
		WalkExpr(x.Pattern, f)
	case *IsNullExpr:
		WalkExpr(x.X, f)
	case *RowExpr:
		for _, it := range x.Exprs {
			WalkExpr(it, f)
		}
	case *ExtractExpr:
		WalkExpr(x.X, f)
	case *SubstringExpr:
		WalkExpr(x.X, f)
		WalkExpr(x.From, f)
		WalkExpr(x.For, f)
	}
}

// SubqueriesOf returns the directly nested subqueries of e (one level).
func SubqueriesOf(e Expr) []*Select {
	var subs []*Select
	WalkExpr(e, func(n Expr) bool {
		switch x := n.(type) {
		case *InExpr:
			if x.Sub != nil {
				subs = append(subs, x.Sub)
			}
		case *ExistsExpr:
			subs = append(subs, x.Sub)
		case *SubqueryExpr:
			subs = append(subs, x.Sub)
		}
		return true
	})
	return subs
}

// ColumnRefsOf returns all column references in e (subqueries excluded).
func ColumnRefsOf(e Expr) []*ColumnRef {
	var refs []*ColumnRef
	WalkExpr(e, func(n Expr) bool {
		if c, ok := n.(*ColumnRef); ok {
			refs = append(refs, c)
		}
		return true
	})
	return refs
}

// AndExprs conjoins the non-nil expressions with AND; returns nil when all
// are nil.
func AndExprs(exprs ...Expr) Expr {
	var out Expr
	for _, e := range exprs {
		if e == nil {
			continue
		}
		if out == nil {
			out = e
		} else {
			out = &BinaryExpr{Op: "AND", L: out, R: e}
		}
	}
	return out
}

// VisitAllExprs calls f for every expression node reachable from stmt,
// descending into subqueries, derived tables, join conditions and INSERT
// sources — unlike WalkExpr, which stops at subquery boundaries. It is the
// traversal bind-parameter analysis uses: every Param of a statement is
// visited exactly through here.
func VisitAllExprs(stmt Statement, f func(Expr)) {
	var visitSel func(s *Select)
	var visitExpr func(e Expr)
	visitExpr = func(e Expr) {
		WalkExpr(e, func(n Expr) bool {
			f(n)
			return true
		})
		for _, sub := range SubqueriesOf(e) {
			visitSel(sub)
		}
	}
	var visitTE func(te TableExpr)
	visitTE = func(te TableExpr) {
		switch t := te.(type) {
		case *DerivedTable:
			visitSel(t.Sub)
		case *JoinExpr:
			visitTE(t.L)
			visitTE(t.R)
			if t.On != nil {
				visitExpr(t.On)
			}
		}
	}
	visitSel = func(s *Select) {
		if s == nil {
			return
		}
		for _, te := range s.From {
			visitTE(te)
		}
		for _, it := range s.Items {
			if it.Expr != nil {
				visitExpr(it.Expr)
			}
		}
		if s.Where != nil {
			visitExpr(s.Where)
		}
		for _, g := range s.GroupBy {
			visitExpr(g)
		}
		if s.Having != nil {
			visitExpr(s.Having)
		}
		for _, o := range s.OrderBy {
			visitExpr(o.Expr)
		}
	}
	switch st := stmt.(type) {
	case *Select:
		visitSel(st)
	case *Insert:
		visitSel(st.Sub)
		for _, row := range st.Rows {
			for _, e := range row {
				visitExpr(e)
			}
		}
	case *Update:
		for _, a := range st.Sets {
			visitExpr(a.Expr)
		}
		if st.Where != nil {
			visitExpr(st.Where)
		}
	case *Delete:
		if st.Where != nil {
			visitExpr(st.Where)
		}
	}
}

// MaxParam returns the highest bind-parameter index ($n / ?) referenced
// anywhere in stmt, 0 when the statement has no parameters.
func MaxParam(stmt Statement) int {
	max := 0
	VisitAllExprs(stmt, func(e Expr) {
		if p, ok := e.(*Param); ok && p.N > max {
			max = p.N
		}
	})
	return max
}

// BaseTablesOf returns every base-table reference (recursing through joins
// but not into derived tables) in the FROM list.
func BaseTablesOf(from []TableExpr) []*TableName {
	var out []*TableName
	var visit func(t TableExpr)
	visit = func(t TableExpr) {
		switch x := t.(type) {
		case *TableName:
			out = append(out, x)
		case *JoinExpr:
			visit(x.L)
			visit(x.R)
		}
	}
	for _, t := range from {
		visit(t)
	}
	return out
}
