// Package shard partitions tenants across N independent engine shards and
// routes every statement by its rewritten tenant set D′ (DESIGN.md
// ADR-009).
//
// Each shard is a full middleware.Server over its own engine.DB: global
// tables and all metadata (schema, tenants, privileges, conversion
// functions) are replicated to every shard, while each tenant-specific row
// lives on exactly one shard, chosen by a fixed Placement. MTBase's
// cross-tenant rewrite names the exact tenant set D′ for every statement,
// which turns placement into routing:
//
//   - statements whose D′ lands on one shard (the single-tenant default
//     scope above all) run there with zero cross-shard coordination — the
//     shard's own middleware resolves the original scope locally and
//     byte-identically;
//   - cross-shard statements scatter to the owning shards under explicit
//     per-shard sub-scopes and gather deterministically (engine.MergeRows /
//     engine.ConcatRows, partial-aggregation fold, or a repartition
//     fallback on the coordinator replica).
//
// A "replica" middleware.Server accompanies the shards as coordinator: it
// holds all metadata and global data but NO tenant rows. It resolves
// scopes and privileges for routing, hosts the fold tables of the
// partial-aggregation gather, and executes repartition fallbacks after
// the owning shards' rows are copied in.
//
// DDL, grants and tenant registration fan out to the replica and every
// shard under a schema-generation barrier (ddlMu): statements route under
// a read lock, schema changes take the write lock, so a scatter never
// observes half-applied schema.
package shard

import (
	"fmt"
	"sort"
	"sync"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mtsql"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
)

// Server is a sharded counterpart of middleware.Server: same Connect/
// Conn/Prepare/Stmt/Rows surface, tenants partitioned over nshards
// engines.
type Server struct {
	place   Placement
	shards  []*middleware.Server
	replica *middleware.Server

	// ddlMu is the schema-generation barrier: statements hold it shared
	// while routing and executing, DDL/grants/tenant registration hold it
	// exclusively while fanning out to every shard.
	ddlMu sync.RWMutex

	// fbMu serializes repartition fallbacks: the replica's tenant tables
	// are a scratch area owned by one fallback at a time.
	fbMu sync.Mutex

	stats Stats

	// Gather-slot pool: scratch tables on the replica for partial-agg
	// folds. Slots are reused so the replica's catalog stays bounded.
	gatherMu   sync.Mutex
	gatherFree []int
	gatherNext int

	// selCache mirrors the middleware's parse cache for the routing layer.
	selMu    sync.Mutex
	selCache map[string]*sqlast.Select
}

const selCacheCap = 512

type config struct {
	place     Placement
	modellers []int64
}

// Option configures a sharded server.
type Option func(*config)

// WithPlacement overrides the default hash placement — the hook for
// heat-based maps (MapPlacement).
func WithPlacement(p Placement) Option {
	return func(c *config) { c.place = p }
}

// WithDataModeller marks ttid as a data modeller on every shard (mirrors
// middleware.WithDataModeller).
func WithDataModeller(ttid int64) Option {
	return func(c *config) { c.modellers = append(c.modellers, ttid) }
}

// New builds a sharded server with nshards fresh engines (plus the
// coordinator replica) in the given engine mode.
func New(nshards int, mode engine.Mode, opts ...Option) (*Server, error) {
	if nshards < 1 {
		return nil, fmt.Errorf("shard: need at least 1 shard, got %d", nshards)
	}
	cfg := config{}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.place == nil {
		cfg.place = HashPlacement{N: nshards}
	}
	mwOpts := make([]middleware.Option, 0, len(cfg.modellers))
	for _, m := range cfg.modellers {
		mwOpts = append(mwOpts, middleware.WithDataModeller(m))
	}
	s := &Server{place: cfg.place, selCache: make(map[string]*sqlast.Select)}
	for i := 0; i < nshards; i++ {
		s.shards = append(s.shards, middleware.NewServer(engine.Open(mode), mwOpts...))
	}
	s.replica = middleware.NewServer(engine.Open(mode), mwOpts...)
	return s, nil
}

// NumShards returns the shard count (excluding the coordinator replica).
func (s *Server) NumShards() int { return len(s.shards) }

// Placement returns the tenant→shard mapping in force.
func (s *Server) Placement() Placement { return s.place }

// ShardOf returns the rank of the shard owning ttid's rows.
func (s *Server) ShardOf(ttid int64) int { return s.place.ShardOf(ttid) }

// Shards exposes the per-shard middleware servers. Loaders use it to bulk
// load each tenant's rows onto its owning shard and to replicate global
// data; routing code never needs it.
func (s *Server) Shards() []*middleware.Server { return s.shards }

// Replica exposes the coordinator replica: all metadata and global data,
// no tenant rows. Loaders replicate global and meta state here too.
func (s *Server) Replica() *middleware.Server { return s.replica }

// Schema returns the MTSQL schema (identical on every shard; the
// replica's copy is the routing authority).
func (s *Server) Schema() *mtsql.Schema { return s.replica.Schema() }

// Stats returns the routing counters.
func (s *Server) Stats() *Stats { return &s.stats }

// CreateTenant registers a tenant on the replica and every shard —
// metadata is replicated even though the tenant's rows will live on
// exactly one shard.
func (s *Server) CreateTenant(ttid int64) error {
	s.ddlMu.Lock()
	defer s.ddlMu.Unlock()
	if err := s.replica.CreateTenant(ttid); err != nil {
		return err
	}
	for _, mw := range s.shards {
		if err := mw.CreateTenant(ttid); err != nil {
			return err
		}
	}
	return nil
}

// Tenants returns all registered tenant ids in ascending order.
func (s *Server) Tenants() []int64 { return s.replica.Tenants() }

// Connect opens a sharded session for tenant ttid: one sub-connection per
// shard plus one on the replica, all sharing the session's C, scope and
// optimization level. Like middleware.Conn, the returned Conn is not safe
// for concurrent use by multiple goroutines.
func (s *Server) Connect(ttid int64) (*Conn, error) {
	rconn, err := s.replica.Connect(ttid)
	if err != nil {
		return nil, err
	}
	sconns := make([]*middleware.Conn, len(s.shards))
	for i, mw := range s.shards {
		if sconns[i], err = mw.Connect(ttid); err != nil {
			return nil, err
		}
	}
	return &Conn{srv: s, c: ttid, level: rconn.OptLevel(), rconn: rconn, sconns: sconns}, nil
}

// parseSelect parses sql as a query, serving repeats from the routing
// layer's parse cache. Cached ASTs are shared: routing only reads them,
// and the partial-aggregation builder clones before mutating.
func (s *Server) parseSelect(sql string) (*sqlast.Select, error) {
	s.selMu.Lock()
	if sel, ok := s.selCache[sql]; ok {
		s.selMu.Unlock()
		return sel, nil
	}
	s.selMu.Unlock()
	sel, err := sqlparse.ParseQuery(sql)
	if err != nil {
		return nil, err
	}
	s.selMu.Lock()
	if len(s.selCache) >= selCacheCap {
		s.selCache = make(map[string]*sqlast.Select)
	}
	s.selCache[sql] = sel
	s.selMu.Unlock()
	return sel, nil
}

// shardSet is one scatter target: a shard rank and the subset of D′ it
// owns (ascending tenant order).
type shardSet struct {
	rank int
	ds   []int64
}

// group partitions the (sorted) tenant set d by owning shard, returning
// targets in ascending rank order.
func (s *Server) group(d []int64) []shardSet {
	byRank := make(map[int][]int64)
	for _, t := range d {
		r := s.place.ShardOf(t)
		byRank[r] = append(byRank[r], t)
	}
	ranks := make([]int, 0, len(byRank))
	for r := range byRank {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	sets := make([]shardSet, 0, len(ranks))
	for _, r := range ranks {
		sets = append(sets, shardSet{rank: r, ds: byRank[r]})
	}
	return sets
}

// Stat is one named counter for stats surfaces (mtserve Stats frames,
// mtsh \stats).
type Stat struct {
	Name  string
	Value int64
}

// StatLines reports the routing counters plus per-shard engine counters
// in a stable order (shard rank; the replica last as "replica").
func (s *Server) StatLines() []Stat {
	snap := s.stats.Snapshot()
	out := []Stat{
		{Name: "shard.shards", Value: int64(len(s.shards))},
		{Name: "shard.routed_single", Value: snap.RoutedSingle},
		{Name: "shard.routed_scatter", Value: snap.RoutedScatter},
		{Name: "shard.routed_fallback", Value: snap.RoutedFallback},
		{Name: "shard.partials_pushed", Value: snap.PartialsPushed},
	}
	for i, mw := range s.shards {
		es := mw.DB().Stats.Snapshot()
		prefix := fmt.Sprintf("shard%d.", i)
		out = append(out,
			Stat{Name: prefix + "rows_streamed", Value: es.RowsStreamed},
			Stat{Name: prefix + "plan_cache_hits", Value: es.PlanCacheHits},
			Stat{Name: prefix + "spill_runs", Value: es.SpillRuns},
			Stat{Name: prefix + "peak_mem_bytes", Value: es.PeakMemBytes},
		)
	}
	es := s.replica.DB().Stats.Snapshot()
	out = append(out,
		Stat{Name: "replica.rows_streamed", Value: es.RowsStreamed},
		Stat{Name: "replica.spill_runs", Value: es.SpillRuns},
	)
	return out
}

// TenantShard is one row of the placement map.
type TenantShard struct {
	Tenant int64
	Shard  int
}

// PlacementMap lists every registered tenant with its owning shard, in
// ascending tenant order (mtsh \shards).
func (s *Server) PlacementMap() []TenantShard {
	ts := s.replica.Tenants()
	out := make([]TenantShard, 0, len(ts))
	for _, t := range ts {
		out = append(out, TenantShard{Tenant: t, Shard: s.place.ShardOf(t)})
	}
	return out
}

// RowCounts reports, per shard rank, the number of tenant-specific rows it
// holds (mtsh \shards).
func (s *Server) RowCounts() []int64 {
	schema := s.Schema()
	out := make([]int64, len(s.shards))
	for i, mw := range s.shards {
		db := mw.DB()
		var n int64
		for _, ti := range schema.Tables() {
			if !ti.TenantSpecific() {
				continue
			}
			if t := db.Table(ti.Name); t != nil {
				n += int64(t.RowCount())
			}
		}
		out[i] = n
	}
	return out
}
