package shard

// Prepared statements over the sharded router: the client text is parsed
// once; every execution re-routes by the D′ of that moment, so a scope
// change between executions can move a statement from single-shard to
// scatter and back. The per-shard middlewares keep their own rewrite and
// plan caches keyed on the parameterized text, so repeated executions hit
// warm caches on whichever shards they land on.

import (
	"context"
	"fmt"

	"mtbase/internal/engine"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
)

// Stmt is a prepared MTSQL statement bound to one sharded session. Like
// the session itself it is not safe for concurrent use.
type Stmt struct {
	conn    *Conn
	raw     string
	sel     *sqlast.Select   // non-nil for queries
	stmt    sqlast.Statement // non-nil for DML
	nParams int
}

// Prepare parses one MTSQL statement with `?` / `$n` placeholders and
// returns a reusable handle. Queries and DML are accepted; DDL and
// session statements have nothing to parameterize and are rejected.
func (c *Conn) Prepare(sql string) (*Stmt, error) {
	st := &Stmt{conn: c, raw: sql}
	if sel, err := c.srv.parseSelect(sql); err == nil {
		st.sel = sel
		st.nParams = sqlast.MaxParam(sel)
		return st, nil
	}
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	switch stmt.(type) {
	case *sqlast.Insert, *sqlast.Update, *sqlast.Delete:
		st.stmt = stmt
	default:
		return nil, fmt.Errorf("shard: cannot prepare %T (only queries and DML)", stmt)
	}
	st.nParams = sqlast.MaxParam(stmt)
	return st, nil
}

// NumParams returns the number of bind parameters the statement expects.
func (st *Stmt) NumParams() int { return st.nParams }

// SQL returns the client text the statement was prepared from.
func (st *Stmt) SQL() string { return st.raw }

// IsQuery reports whether the statement is a SELECT (row-returning)
// rather than DML.
func (st *Stmt) IsQuery() bool { return st.sel != nil }

// Close releases the handle; cached parses and the shards' rewrite caches
// stay warm for future preparations of the same text.
func (st *Stmt) Close() error { return nil }

// Query executes a prepared SELECT and returns a streaming cursor —
// direct from one shard, or a gather cursor for cross-shard routes.
func (st *Stmt) Query(args ...any) (*engine.Rows, error) {
	return st.QueryContext(context.Background(), args...)
}

// QueryContext is Query with cancellation polled inside every operator
// and across the gather.
func (st *Stmt) QueryContext(ctx context.Context, args ...any) (*engine.Rows, error) {
	if st.sel == nil {
		return nil, fmt.Errorf("shard: not a query: %s (use Exec)", st.raw)
	}
	st.conn.srv.ddlMu.RLock()
	defer st.conn.srv.ddlMu.RUnlock()
	return st.conn.routeQuery(ctx, st.sel, st.raw, args)
}

// QueryResult executes a prepared SELECT and materializes the result.
func (st *Stmt) QueryResult(args ...any) (*engine.Result, error) {
	rows, err := st.QueryContext(context.Background(), args...)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// Exec executes a prepared statement (query or DML) with the given bind
// values, materializing the outcome.
func (st *Stmt) Exec(args ...any) (*engine.Result, error) {
	return st.ExecContext(context.Background(), args...)
}

// ExecContext is Exec with cancellation checked at batch boundaries.
func (st *Stmt) ExecContext(ctx context.Context, args ...any) (*engine.Result, error) {
	if st.sel != nil {
		rows, err := st.QueryContext(ctx, args...)
		if err != nil {
			return nil, err
		}
		return rows.Collect()
	}
	return st.conn.dispatch(ctx, st.stmt, st.raw, args)
}
