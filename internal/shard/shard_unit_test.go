// In-package unit tests for the routing internals the end-to-end
// differential (internal/mth) exercises only indirectly: placement
// determinism, tenant grouping, the pinned-query classifier, and the
// partial-aggregation decomposition.
package shard

import (
	"strings"
	"testing"

	"mtbase/internal/engine"
	"mtbase/internal/mtsql"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
)

func TestHashPlacementDeterministicAndBounded(t *testing.T) {
	h := HashPlacement{N: 4}
	hit := make(map[int]int)
	for ttid := int64(1); ttid <= 256; ttid++ {
		r := h.ShardOf(ttid)
		if r < 0 || r >= h.N {
			t.Fatalf("ShardOf(%d) = %d, out of [0,%d)", ttid, r, h.N)
		}
		if again := h.ShardOf(ttid); again != r {
			t.Fatalf("ShardOf(%d) not deterministic: %d then %d", ttid, r, again)
		}
		hit[r]++
	}
	if len(hit) != h.N {
		t.Errorf("256 consecutive tenants hit only %d of %d shards: %v", len(hit), h.N, hit)
	}
	if one := (HashPlacement{N: 1}); one.ShardOf(42) != 0 {
		t.Error("single-shard placement must pin everything to rank 0")
	}
	if zero := (HashPlacement{N: 0}); zero.ShardOf(42) != 0 {
		t.Error("degenerate N=0 placement must pin to rank 0")
	}
}

func TestMapPlacementPinAndFallback(t *testing.T) {
	fb := HashPlacement{N: 3}
	m := MapPlacement{Assign: map[int64]int{7: 2, 8: 2}, Fallback: fb}
	if m.ShardOf(7) != 2 || m.ShardOf(8) != 2 {
		t.Error("pinned tenants must land on their assigned rank")
	}
	for ttid := int64(1); ttid <= 6; ttid++ {
		if got, want := m.ShardOf(ttid), fb.ShardOf(ttid); got != want {
			t.Errorf("unpinned tenant %d: got rank %d, fallback says %d", ttid, got, want)
		}
	}
}

func TestGroupPartitionsByRank(t *testing.T) {
	place := MapPlacement{
		Assign:   map[int64]int{1: 2, 2: 0, 3: 2, 4: 0, 5: 1},
		Fallback: HashPlacement{N: 3},
	}
	s, err := New(3, engine.ModePostgres, WithPlacement(place))
	if err != nil {
		t.Fatal(err)
	}
	sets := s.group([]int64{1, 2, 3, 4, 5})
	if len(sets) != 3 {
		t.Fatalf("group returned %d sets, want 3", len(sets))
	}
	want := []shardSet{
		{rank: 0, ds: []int64{2, 4}},
		{rank: 1, ds: []int64{5}},
		{rank: 2, ds: []int64{1, 3}},
	}
	for i, ss := range sets {
		if ss.rank != want[i].rank {
			t.Fatalf("set %d rank = %d, want %d (sets must come back in ascending rank order)", i, ss.rank, want[i].rank)
		}
		if len(ss.ds) != len(want[i].ds) {
			t.Fatalf("set %d has %d tenants, want %d", i, len(ss.ds), len(want[i].ds))
		}
		for j, ttid := range ss.ds {
			if ttid != want[i].ds[j] {
				t.Errorf("set %d tenant %d = %d, want %d", i, j, ttid, want[i].ds[j])
			}
		}
	}
	if empty := s.group(nil); len(empty) != 0 {
		t.Errorf("group(nil) = %v, want empty", empty)
	}
}

// routeSchema builds the classifier's input: one SPECIFIC tenant table,
// one global table, and a view.
func routeSchema(t *testing.T) *mtsql.Schema {
	t.Helper()
	s := mtsql.NewSchema()
	add := func(ddl string) {
		stmt, err := sqlparse.ParseStatement(ddl)
		if err != nil {
			t.Fatalf("parse %q: %v", ddl, err)
		}
		if _, err := s.AddTable(stmt.(*sqlast.CreateTable)); err != nil {
			t.Fatalf("AddTable: %v", err)
		}
	}
	add(`CREATE TABLE emp SPECIFIC (
		e_id INTEGER NOT NULL SPECIFIC,
		e_name VARCHAR(25) NOT NULL COMPARABLE,
		e_role INTEGER NOT NULL SPECIFIC,
		e_age INTEGER NOT NULL COMPARABLE)`)
	add(`CREATE TABLE roles SPECIFIC (
		r_id INTEGER NOT NULL SPECIFIC,
		r_name VARCHAR(25) NOT NULL COMPARABLE)`)
	add(`CREATE TABLE regions (re_id INTEGER NOT NULL, re_name VARCHAR(25) NOT NULL)`)
	s.AddView("emp_view", []string{"e_id", "e_name"})
	return s
}

func parseSel(t *testing.T, sql string) *sqlast.Select {
	t.Helper()
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	sel, ok := stmt.(*sqlast.Select)
	if !ok {
		t.Fatalf("%q parsed to %T, want *sqlast.Select", sql, stmt)
	}
	return sel
}

func TestAnalyzeClassification(t *testing.T) {
	schema := routeSchema(t)
	cases := []struct {
		name      string
		sql       string
		pinned    bool
		plainScan bool
		aggPush   bool
	}{
		{
			name:      "single tenant table scan merges",
			sql:       "SELECT e_id, e_name FROM emp WHERE e_age > 30 ORDER BY e_id",
			pinned:    true,
			plainScan: true,
		},
		{
			// The rewrite injects emp.ttid = roles.ttid for this SPECIFIC
			// comparison, so the two bindings form one component.
			name:      "specific join chains into one component",
			sql:       "SELECT e_name, r_name FROM emp, roles WHERE e_role = r_id ORDER BY e_name",
			pinned:    true,
			plainScan: true,
		},
		{
			// Joining only on COMPARABLE attributes injects no ttid
			// equality: two components, rows may mix tenants.
			name:   "comparable-only join is unpinned",
			sql:    "SELECT e_name, r_name FROM emp, roles WHERE e_name = r_name",
			pinned: false,
		},
		{
			name:   "global-only query groups as unpinned",
			sql:    "SELECT re_name FROM regions ORDER BY re_id",
			pinned: true, // zero tenant components ≤ 1; router still scatters trivially
		},
		{
			name:    "pinned aggregation pushes partials",
			sql:     "SELECT e_role, COUNT(*) AS n, AVG(e_age) AS a FROM emp GROUP BY e_role ORDER BY e_role",
			pinned:  true,
			aggPush: true,
		},
		{
			// Pinned but DISTINCT: concat would duplicate across shards,
			// and there is no aggregation to fold — repartition fallback.
			name:   "top-level distinct needs fallback",
			sql:    "SELECT DISTINCT e_name FROM emp",
			pinned: true,
		},
		{
			name:   "nested limit erases tenant identity",
			sql:    "SELECT s.e_id FROM (SELECT e_id FROM emp ORDER BY e_age LIMIT 5) AS s",
			pinned: false,
		},
		{
			name:   "views force the fallback",
			sql:    "SELECT e_name FROM emp_view",
			pinned: false,
		},
		{
			name:   "unknown table is conservatively unpinned",
			sql:    "SELECT x FROM nowhere",
			pinned: false,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			an := analyze(parseSel(t, tc.sql), schema)
			if an.pinned != tc.pinned {
				t.Fatalf("pinned = %v, want %v", an.pinned, tc.pinned)
			}
			if an.plainScan != tc.plainScan {
				t.Errorf("plainScan = %v, want %v", an.plainScan, tc.plainScan)
			}
			if an.aggPush != tc.aggPush {
				t.Errorf("aggPush = %v, want %v", an.aggPush, tc.aggPush)
			}
			if tc.aggPush && an.plan == nil {
				t.Error("aggPush without a partial plan")
			}
		})
	}
}

func TestAnalyzeMergeKeys(t *testing.T) {
	schema := routeSchema(t)
	an := analyze(parseSel(t,
		"SELECT e_id, e_name AS nm FROM emp ORDER BY nm DESC, e_id"), schema)
	if !an.plainScan {
		t.Fatal("aliased ORDER BY over output columns must stay mergeable")
	}
	want := []engine.MergeKey{{Col: 1, Desc: true}, {Col: 0, Desc: false}}
	if len(an.mergeKeys) != len(want) {
		t.Fatalf("got %d merge keys, want %d", len(an.mergeKeys), len(want))
	}
	for i, k := range an.mergeKeys {
		if k != want[i] {
			t.Errorf("key %d = %+v, want %+v", i, k, want[i])
		}
	}

	// ORDER BY over an expression absent from the select list cannot map
	// to an output column — not mergeable, so not a plain scan.
	an = analyze(parseSel(t, "SELECT e_id FROM emp ORDER BY e_age"), schema)
	if an.plainScan {
		t.Error("un-mappable ORDER BY must reject the merge path")
	}
}

func TestBuildPartialPlanDecomposition(t *testing.T) {
	sel := parseSel(t, `SELECT e_role, COUNT(*) AS n, SUM(e_age) AS s, AVG(e_age) AS a
		FROM emp GROUP BY e_role ORDER BY e_role`)
	plan, ok := buildPartialPlan(sel)
	if !ok {
		t.Fatal("grouped COUNT/SUM/AVG must be decomposable")
	}
	// mtg_0 (group key), mtp for COUNT, SUM, then AVG's sum+count pair.
	want := []string{"mtg_0", "mtp_1", "mtp_2", "mtp_3", "mtp_4"}
	if len(plan.partialCols) != len(want) {
		t.Fatalf("partial columns %v, want %v", plan.partialCols, want)
	}
	for i, c := range plan.partialCols {
		if c != want[i] {
			t.Fatalf("partial columns %v, want %v", plan.partialCols, want)
		}
	}
	partialSQL := plan.partial.String()
	if strings.Contains(partialSQL, "ORDER BY") || strings.Contains(partialSQL, "HAVING") {
		t.Errorf("partial must strip ORDER BY/HAVING: %s", partialSQL)
	}
	combineSQL := plan.combine.String()
	if !strings.Contains(combineSQL, "* 1.0") {
		t.Errorf("AVG fold must force float division with * 1.0: %s", combineSQL)
	}
	if strings.Contains(combineSQL, "COALESCE") {
		t.Errorf("grouped COUNT fold must not inject COALESCE: %s", combineSQL)
	}

	// Ungrouped COUNT over zero partial rows would SUM to NULL; the fold
	// must coalesce it back to 0.
	plan, ok = buildPartialPlan(parseSel(t, "SELECT COUNT(*) AS n FROM emp"))
	if !ok {
		t.Fatal("ungrouped COUNT must be decomposable")
	}
	if !strings.Contains(plan.combine.String(), "COALESCE") {
		t.Errorf("ungrouped COUNT fold needs COALESCE(..., 0): %s", plan.combine.String())
	}

	// COUNT(DISTINCT x) cannot be folded from per-shard partials.
	if _, ok := buildPartialPlan(parseSel(t,
		"SELECT COUNT(DISTINCT e_name) FROM emp")); ok {
		t.Error("COUNT(DISTINCT) must reject the pushdown")
	}
}
