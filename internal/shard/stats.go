package shard

import "sync/atomic"

// Stats counts routing decisions across all connections of one sharded
// server. The counters are plain int64s accessed only through sync/atomic
// (the engine's Stats idiom, enforced by mtlint atomicstats): sessions
// route concurrently.
type Stats struct {
	RoutedSingle   int64 // statements sent to exactly one shard
	RoutedScatter  int64 // statements scattered to >1 shard
	RoutedFallback int64 // scatter statements repartitioned to the coordinator
	PartialsPushed int64 // scatter statements with partial aggregation pushed into shards
}

// StatsSnapshot is a point-in-time copy of the routing counters.
type StatsSnapshot struct {
	RoutedSingle   int64
	RoutedScatter  int64
	RoutedFallback int64
	PartialsPushed int64
}

// Snapshot copies the counters.
func (s *Stats) Snapshot() StatsSnapshot {
	return StatsSnapshot{
		RoutedSingle:   atomic.LoadInt64(&s.RoutedSingle),
		RoutedScatter:  atomic.LoadInt64(&s.RoutedScatter),
		RoutedFallback: atomic.LoadInt64(&s.RoutedFallback),
		PartialsPushed: atomic.LoadInt64(&s.PartialsPushed),
	}
}
