package shard

// Partial-aggregation pushdown (DESIGN.md ADR-009).
//
// For a pinned, grouped/aggregated cross-shard SELECT, each owning shard
// computes a partial: the original statement with its select list replaced
// by the group-key expressions (mtg_i) and decomposed aggregates (mtp_i),
// HAVING/ORDER BY/LIMIT stripped. The partial goes through every shard's
// own middleware (full rewrite under the shard's sub-scope), so
// conversions and D-filters apply exactly as they would unsharded.
//
// The gathered partial rows land in a scratch table on the coordinator
// replica and a combine statement folds them: COUNT → SUM of partial
// counts, SUM → SUM of partial sums, MIN/MAX → MIN/MAX of partial
// extrema, AVG → SUM(partial sums) * 1.0 / SUM(partial counts) (the
// `* 1.0` forces float division; the engine's AVG is always a float).
//
// The fold needs no tenant keys: grouping is by value, and because the
// decomposed aggregates are associative and commutative, folding partials
// over ANY partition of the input rows — including groups that span
// tenants with colliding key values — reproduces the unsharded result
// exactly. Pinnedness (route.go) guarantees the partition itself: every
// input row combination belongs to one tenant and is produced by exactly
// one shard.

import (
	"context"
	"fmt"
	"strings"
	"sync"

	"mtbase/internal/engine"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqltypes"
)

// partialPlan carries the shard-side partial statement and the
// coordinator-side combine statement of one aggregation pushdown.
type partialPlan struct {
	partial     *sqlast.Select
	combine     *sqlast.Select
	tempTable   *sqlast.TableName // combine's FROM — renamed to the scratch slot at run time
	partialCols []string          // partial output columns, in order (mtg_*, mtp_*)
}

// substitution maps original expression text to its combine-side
// replacement (group keys → mtg refs, aggregate calls → fold exprs).
type substitution map[string]func() sqlast.Expr

// buildPartialPlan decomposes sel (pinned, aggregated, shared AST — never
// mutated) into partial+combine, or reports false when the shape is not
// decomposable (the router then uses the repartition fallback).
func buildPartialPlan(sel *sqlast.Select) (*partialPlan, bool) {
	if sel.Distinct {
		return nil, false
	}
	for _, it := range sel.Items {
		if it.Star || it.Expr == nil || exprHasSubquery(it.Expr) {
			return nil, false
		}
	}
	if exprHasSubquery(sel.Having) {
		return nil, false
	}
	for _, o := range sel.OrderBy {
		if exprHasSubquery(o.Expr) {
			return nil, false
		}
	}
	for _, g := range sel.GroupBy {
		if exprHasSubquery(g) {
			return nil, false
		}
	}

	subst := make(substitution)
	var partialItems []sqlast.SelectItem
	var partialCols []string
	var combineGroup []sqlast.Expr

	addPartial := func(name string, e sqlast.Expr) {
		partialItems = append(partialItems, sqlast.SelectItem{Expr: e, Alias: name})
		partialCols = append(partialCols, name)
	}

	// Group keys pass through the partial as mtg_i and become the
	// combine's grouping columns.
	for i, g := range sel.GroupBy {
		key := g.String()
		if _, dup := subst[key]; dup {
			continue
		}
		name := fmt.Sprintf("mtg_%d", i)
		addPartial(name, sqlast.CloneExpr(g))
		combineGroup = append(combineGroup, &sqlast.ColumnRef{Name: name})
		subst[key] = func() sqlast.Expr { return &sqlast.ColumnRef{Name: name} }
	}

	// Aggregate calls decompose into partial aggregates plus a fold.
	grouped := len(sel.GroupBy) > 0
	decomposable := true
	collectAggs := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			fc, ok := n.(*sqlast.FuncCall)
			if !ok || !engine.IsAggregate(fc.Name) {
				return true
			}
			if fc.Distinct {
				decomposable = false // COUNT(DISTINCT x) cannot fold from partials
				return false
			}
			key := fc.String()
			if _, dup := subst[key]; dup {
				return false
			}
			idx := len(partialCols)
			switch strings.ToUpper(fc.Name) {
			case "AVG":
				sumName := fmt.Sprintf("mtp_%d", idx)
				cntName := fmt.Sprintf("mtp_%d", idx+1)
				arg := sqlast.CloneExpr(fc.Args[0])
				addPartial(sumName, &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{arg}})
				addPartial(cntName, &sqlast.FuncCall{Name: "COUNT", Args: []sqlast.Expr{sqlast.CloneExpr(fc.Args[0])}})
				subst[key] = func() sqlast.Expr {
					return &sqlast.BinaryExpr{
						Op: "/",
						L: &sqlast.BinaryExpr{
							Op: "*",
							L:  &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{&sqlast.ColumnRef{Name: sumName}}},
							R:  &sqlast.Literal{Val: sqltypes.NewFloat(1)},
						},
						R: &sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{&sqlast.ColumnRef{Name: cntName}}},
					}
				}
			case "COUNT":
				name := fmt.Sprintf("mtp_%d", idx)
				part := &sqlast.FuncCall{Name: "COUNT", Star: fc.Star}
				if !fc.Star {
					part.Args = []sqlast.Expr{sqlast.CloneExpr(fc.Args[0])}
				}
				addPartial(name, part)
				subst[key] = func() sqlast.Expr {
					fold := sqlast.Expr(&sqlast.FuncCall{Name: "SUM", Args: []sqlast.Expr{&sqlast.ColumnRef{Name: name}}})
					if !grouped {
						// An ungrouped COUNT over zero rows is 0, but SUM
						// over an empty fold input would be NULL.
						fold = &sqlast.FuncCall{Name: "COALESCE", Args: []sqlast.Expr{fold, sqlast.NewIntLit(0)}}
					}
					return fold
				}
			case "SUM", "MIN", "MAX":
				name := fmt.Sprintf("mtp_%d", idx)
				foldFn := strings.ToUpper(fc.Name)
				addPartial(name, &sqlast.FuncCall{Name: fc.Name, Args: []sqlast.Expr{sqlast.CloneExpr(fc.Args[0])}})
				subst[key] = func() sqlast.Expr {
					return &sqlast.FuncCall{Name: foldFn, Args: []sqlast.Expr{&sqlast.ColumnRef{Name: name}}}
				}
			default:
				decomposable = false
			}
			return false
		})
	}
	for _, it := range sel.Items {
		collectAggs(it.Expr)
	}
	collectAggs(sel.Having)
	for _, o := range sel.OrderBy {
		collectAggs(o.Expr)
	}
	if !decomposable {
		return nil, false
	}

	// Shard-side partial: original FROM/WHERE (cloned), mtg/mtp outputs,
	// original grouping, no HAVING/ORDER/LIMIT.
	partial := sqlast.CloneSelect(sel)
	partial.Items = partialItems
	partial.Having = nil
	partial.OrderBy = nil
	partial.Limit = -1
	partial.Distinct = false

	// Coordinator-side combine over the scratch table.
	tempTable := &sqlast.TableName{}
	combine := &sqlast.Select{
		From:    []sqlast.TableExpr{tempTable},
		GroupBy: combineGroup,
		Limit:   sel.Limit,
	}
	combineOutputs := make(map[string]bool)
	for _, it := range sel.Items {
		name := outputNameOf(it)
		if !validIdentifier(name) {
			return nil, false // the fold result must carry the original column name
		}
		folded, ok := substituteExpr(it.Expr, subst)
		if !ok {
			return nil, false
		}
		combine.Items = append(combine.Items, sqlast.SelectItem{Expr: folded, Alias: name})
		combineOutputs[strings.ToLower(name)] = true
	}
	if sel.Having != nil {
		h, ok := substituteExpr(sel.Having, subst)
		if !ok {
			return nil, false
		}
		combine.Having = h
	}
	for _, o := range sel.OrderBy {
		// Bare references to a combine output column (alias or group key
		// name) pass through; anything else must fold to mtg/mtp refs.
		if cr, isRef := o.Expr.(*sqlast.ColumnRef); isRef && cr.Table == "" && combineOutputs[strings.ToLower(cr.Name)] {
			combine.OrderBy = append(combine.OrderBy, sqlast.OrderItem{Expr: &sqlast.ColumnRef{Name: cr.Name}, Desc: o.Desc})
			continue
		}
		folded, ok := substituteExpr(o.Expr, subst)
		if !ok {
			return nil, false
		}
		combine.OrderBy = append(combine.OrderBy, sqlast.OrderItem{Expr: folded, Desc: o.Desc})
	}

	return &partialPlan{
		partial:     partial,
		combine:     combine,
		tempTable:   tempTable,
		partialCols: partialCols,
	}, true
}

// outputNameOf mirrors the engine's output-column naming rule.
func outputNameOf(it sqlast.SelectItem) string {
	if it.Alias != "" {
		return it.Alias
	}
	if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
		return cr.Name
	}
	return it.Expr.String()
}

func validIdentifier(s string) bool {
	if s == "" {
		return false
	}
	for i, r := range s {
		switch {
		case r == '_', r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// substituteExpr rewrites e top-down: subtrees whose text matches a
// substitution key are replaced whole; everything else is rebuilt with
// substituted children. It fails when a base-table column reference
// survives outside any substituted subtree — the combine statement may
// reference only mtg/mtp columns of the scratch table.
func substituteExpr(e sqlast.Expr, subst substitution) (sqlast.Expr, bool) {
	if e == nil {
		return nil, true
	}
	if mk, ok := subst[e.String()]; ok {
		return mk(), true
	}
	rebuild := func(parts ...*sqlast.Expr) bool {
		for _, p := range parts {
			ne, ok := substituteExpr(*p, subst)
			if !ok {
				return false
			}
			*p = ne
		}
		return true
	}
	switch x := e.(type) {
	case *sqlast.Literal, *sqlast.Param:
		return e, true
	case *sqlast.ColumnRef:
		return nil, false // unsubstituted base column: not computable from partials
	case *sqlast.BinaryExpr:
		c := *x
		if !rebuild(&c.L, &c.R) {
			return nil, false
		}
		return &c, true
	case *sqlast.UnaryExpr:
		c := *x
		if !rebuild(&c.X) {
			return nil, false
		}
		return &c, true
	case *sqlast.FuncCall:
		c := *x
		c.Args = append([]sqlast.Expr(nil), x.Args...)
		for i := range c.Args {
			if !rebuild(&c.Args[i]) {
				return nil, false
			}
		}
		return &c, true
	case *sqlast.CaseExpr:
		c := *x
		c.Whens = append([]sqlast.CaseWhen(nil), x.Whens...)
		if !rebuild(&c.Operand, &c.Else) {
			return nil, false
		}
		for i := range c.Whens {
			if !rebuild(&c.Whens[i].Cond, &c.Whens[i].Then) {
				return nil, false
			}
		}
		return &c, true
	case *sqlast.BetweenExpr:
		c := *x
		if !rebuild(&c.X, &c.Lo, &c.Hi) {
			return nil, false
		}
		return &c, true
	case *sqlast.LikeExpr:
		c := *x
		if !rebuild(&c.X, &c.Pattern) {
			return nil, false
		}
		return &c, true
	case *sqlast.IsNullExpr:
		c := *x
		if !rebuild(&c.X) {
			return nil, false
		}
		return &c, true
	case *sqlast.ExtractExpr:
		c := *x
		if !rebuild(&c.X) {
			return nil, false
		}
		return &c, true
	case *sqlast.SubstringExpr:
		c := *x
		if !rebuild(&c.X, &c.From, &c.For) {
			return nil, false
		}
		return &c, true
	case *sqlast.InExpr:
		if x.Sub != nil {
			return nil, false
		}
		c := *x
		c.List = append([]sqlast.Expr(nil), x.List...)
		if !rebuild(&c.X) {
			return nil, false
		}
		for i := range c.List {
			if !rebuild(&c.List[i]) {
				return nil, false
			}
		}
		return &c, true
	default:
		return nil, false
	}
}

func exprHasSubquery(e sqlast.Expr) bool {
	return e != nil && len(sqlast.SubqueriesOf(e)) > 0
}

// sliceArgs trims the statement arguments to the exact bind arity the
// engine demands.
func sliceArgs(args []any, stmt sqlast.Statement) ([]any, error) {
	n := sqlast.MaxParam(stmt)
	if n > len(args) {
		return nil, fmt.Errorf("shard: statement references $%d but only %d arguments given", n, len(args))
	}
	return args[:n], nil
}

// partialScatter executes an aggregation pushdown: partials on every
// owning shard (concurrently — each shard has its own sub-connection and
// engine), fold on the replica's scratch table.
func (c *Conn) partialScatter(ctx context.Context, sel *sqlast.Select, args []any, sets []shardSet, an analysis) (*engine.Rows, error) {
	plan := an.plan
	partialSQL := plan.partial.String()
	pargs, err := sliceArgs(args, plan.partial)
	if err != nil {
		return nil, err
	}

	// Create all shard cursors sequentially (cursor creation captures the
	// sub-scope rewrite), then drain them concurrently.
	curs := make([]*engine.Rows, len(sets))
	ranks := make([]int, 0, len(sets))
	for i, ss := range sets {
		ranks = append(ranks, ss.rank)
		if err := c.setSub(ss.rank, ss.ds); err != nil {
			c.restoreSubs(ranks[:i])
			return nil, err
		}
		rows, qerr := c.sconns[ss.rank].QueryContext(ctx, partialSQL, pargs...)
		if qerr != nil {
			for _, r := range curs[:i] {
				r.Close()
			}
			c.restoreSubs(ranks)
			return nil, qerr
		}
		curs[i] = rows
	}
	c.restoreSubs(ranks)

	results := make([]*engine.Result, len(curs))
	errs := make([]error, len(curs))
	var wg sync.WaitGroup
	for i, rows := range curs {
		wg.Add(1)
		go func(i int, rows *engine.Rows) {
			defer wg.Done()
			results[i], errs[i] = rows.Collect()
		}(i, rows)
	}
	wg.Wait()
	var partialRows [][]sqltypes.Value
	for i, e := range errs {
		if e != nil {
			return nil, e
		}
		partialRows = append(partialRows, results[i].Rows...)
	}

	return c.srv.foldPartials(ctx, plan, partialRows, args)
}

// foldPartials loads partial rows into a scratch slot on the replica and
// runs the combine statement there, returning the materialized result.
func (s *Server) foldPartials(ctx context.Context, plan *partialPlan, partialRows [][]sqltypes.Value, args []any) (*engine.Rows, error) {
	name, err := s.acquireGatherSlot(plan.partialCols, partialRows)
	if err != nil {
		return nil, err
	}
	defer s.releaseGatherSlot(name)

	plan.tempTable.Name = name
	combineSQL := plan.combine.String()
	cargs, err := sliceArgs(args, plan.combine)
	if err != nil {
		return nil, err
	}
	vals := make([]sqltypes.Value, len(cargs))
	for i, a := range cargs {
		if vals[i], err = sqltypes.BindValue(a); err != nil {
			return nil, err
		}
	}
	rows, err := s.replica.DB().QueryContext(ctx, combineSQL, vals...)
	if err != nil {
		return nil, err
	}
	res, err := rows.Collect()
	if err != nil {
		return nil, err
	}
	return engine.MaterializedRows(res.Cols, res.Rows), nil
}

// acquireGatherSlot takes a scratch table slot on the replica, recreating
// the table for this gather's column shape and loading the partial rows.
// Slot names are a small reused pool so the replica's plan cache stays
// bounded.
func (s *Server) acquireGatherSlot(cols []string, rows [][]sqltypes.Value) (string, error) {
	s.gatherMu.Lock()
	var slot int
	if n := len(s.gatherFree); n > 0 {
		slot = s.gatherFree[n-1]
		s.gatherFree = s.gatherFree[:n-1]
	} else {
		slot = s.gatherNext
		s.gatherNext++
	}
	s.gatherMu.Unlock()

	name := fmt.Sprintf("mt_gather_%d", slot)
	rdb := s.replica.DB()
	if rdb.Table(name) != nil {
		if _, err := rdb.ExecSQL("DROP TABLE " + name); err != nil {
			s.freeSlot(slot)
			return "", err
		}
	}
	tcols := make([]engine.Column, len(cols))
	for i, cn := range cols {
		tcols[i] = engine.Column{Name: cn, Type: inferKind(rows, i)}
	}
	rdb.CreateTableDirect(name, tcols, nil)
	rdb.Table(name).BulkLoad(rows)
	return name, nil
}

func (s *Server) releaseGatherSlot(name string) {
	var slot int
	fmt.Sscanf(name, "mt_gather_%d", &slot)
	// Keep the (empty) table definition; the next acquire drops and
	// recreates it for its own column shape.
	if t := s.replica.DB().Table(name); t != nil {
		t.ReplaceRows(nil)
	}
	s.freeSlot(slot)
}

func (s *Server) freeSlot(slot int) {
	s.gatherMu.Lock()
	s.gatherFree = append(s.gatherFree, slot)
	s.gatherMu.Unlock()
}

// inferKind picks a column type from the first non-null value; an
// all-null column (every shard aggregated an empty input) types as float,
// which any fold accepts.
func inferKind(rows [][]sqltypes.Value, col int) sqltypes.Kind {
	for _, r := range rows {
		if !r[col].IsNull() {
			return r[col].K
		}
	}
	return sqltypes.KindFloat
}
