package shard

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqlast"
	"mtbase/internal/sqlparse"
	"mtbase/internal/sqltypes"
)

// Conn is a sharded session: the same surface as middleware.Conn, with
// every statement routed by its resolved tenant set D′. It is not safe
// for concurrent use by multiple goroutines (like middleware.Conn).
type Conn struct {
	srv   *Server
	c     int64
	level optimizer.Level
	scope *sqlast.SetScope // session scope AST; nil = default {C}

	rconn  *middleware.Conn   // coordinator replica connection
	sconns []*middleware.Conn // one per shard, rank order
}

// C returns the client tenant.
func (c *Conn) C() int64 { return c.c }

// SetOptLevel sets the optimization level for subsequent statements on
// every sub-connection.
func (c *Conn) SetOptLevel(l optimizer.Level) {
	c.level = l
	c.rconn.SetOptLevel(l)
	for _, sc := range c.sconns {
		sc.SetOptLevel(l)
	}
}

// OptLevel returns the session's optimization level.
func (c *Conn) OptLevel() optimizer.Level { return c.level }

// Exec parses and executes one statement, materializing any result.
func (c *Conn) Exec(sql string) (*engine.Result, error) {
	return c.ExecContext(context.Background(), sql)
}

// ExecStatement executes an already parsed statement. SET SCOPE is
// installed from the AST (never re-serialized: an empty simple scope
// serializes to the all-tenants form); everything else re-enters by text.
func (c *Conn) ExecStatement(stmt sqlast.Statement) (*engine.Result, error) {
	if sc, ok := stmt.(*sqlast.SetScope); ok {
		return c.setScope(sc)
	}
	return c.dispatch(context.Background(), stmt, stmt.String(), nil)
}

// ExecContext parses and executes one statement under ctx.
func (c *Conn) ExecContext(ctx context.Context, sql string, args ...any) (*engine.Result, error) {
	stmt, err := sqlparse.ParseStatement(sql)
	if err != nil {
		return nil, err
	}
	return c.dispatch(ctx, stmt, sql, args)
}

// Query executes a SELECT and materializes the result.
func (c *Conn) Query(sql string, args ...any) (*engine.Result, error) {
	rows, err := c.QueryRows(sql, args...)
	if err != nil {
		return nil, err
	}
	return rows.Collect()
}

// QueryRows executes a SELECT and returns a streaming cursor.
func (c *Conn) QueryRows(sql string, args ...any) (*engine.Rows, error) {
	return c.QueryContext(context.Background(), sql, args...)
}

// QueryContext executes a SELECT under ctx and returns a streaming
// cursor: routed to one shard when D′ lands on one, scattered and
// gathered otherwise.
func (c *Conn) QueryContext(ctx context.Context, sql string, args ...any) (*engine.Rows, error) {
	sel, err := c.srv.parseSelect(sql)
	if err != nil {
		return nil, err
	}
	c.srv.ddlMu.RLock()
	defer c.srv.ddlMu.RUnlock()
	return c.routeQuery(ctx, sel, sql, args)
}

func (c *Conn) dispatch(ctx context.Context, stmt sqlast.Statement, sql string, args []any) (*engine.Result, error) {
	switch st := stmt.(type) {
	case *sqlast.Select:
		c.srv.ddlMu.RLock()
		rows, err := c.routeQuery(ctx, st, sql, args)
		c.srv.ddlMu.RUnlock()
		if err != nil {
			return nil, err
		}
		return rows.Collect()
	case *sqlast.SetScope:
		return c.setScope(st)
	case *sqlast.Insert:
		return c.execInsert(ctx, st, sql, args)
	case *sqlast.Update:
		return c.execTargetedDML(ctx, st.Table, sqlast.PrivUpdate, sql, args)
	case *sqlast.Delete:
		return c.execTargetedDML(ctx, st.Table, sqlast.PrivDelete, sql, args)
	default:
		return c.execDDL(stmt, sql)
	}
}

// setScope installs the session scope on every sub-connection and
// remembers the AST for scatter-time restores.
func (c *Conn) setScope(st *sqlast.SetScope) (*engine.Result, error) {
	c.srv.ddlMu.RLock()
	defer c.srv.ddlMu.RUnlock()
	if _, err := c.rconn.ExecStatement(st); err != nil {
		return nil, err
	}
	for _, sc := range c.sconns {
		if _, err := sc.ExecStatement(st); err != nil {
			return nil, err
		}
	}
	c.scope = st
	return &engine.Result{}, nil
}

// sessionScope returns the scope AST to restore after a sub-scope hijack.
// The default scope has no explicit AST; SCOPE IN (C) resolves to the
// identical dataset.
func (c *Conn) sessionScope() *sqlast.SetScope {
	if c.scope != nil {
		return c.scope
	}
	return &sqlast.SetScope{Simple: []int64{c.c}}
}

// setSub points one shard's sub-connection at an explicit tenant subset.
func (c *Conn) setSub(rank int, ds []int64) error {
	_, err := c.sconns[rank].ExecStatement(&sqlast.SetScope{Simple: ds})
	return err
}

// restoreSubs restores the session scope on the given shard ranks.
func (c *Conn) restoreSubs(ranks []int) {
	orig := c.sessionScope()
	for _, r := range ranks {
		c.sconns[r].ExecStatement(orig) //nolint:errcheck // scope install cannot fail
	}
}

// resolveDPrime computes the global privilege-pruned tenant set D′ for a
// statement touching tables. Default, simple and all scopes resolve on
// the replica (pure metadata, identical everywhere). A complex scope is
// data-dependent: each shard resolves it against its own partition — a
// tenant qualifies based on rows that live only on its owning shard — and
// the union, pruned on the replica under a temporary explicit scope, is
// the global answer.
func (c *Conn) resolveDPrime(priv sqlast.Privilege, tables []string) (d []int64, all bool, err error) {
	if c.scope == nil || c.scope.Complex == nil {
		rctx, err := c.rconn.RewriteContext(priv, tables...)
		if err != nil {
			return nil, false, err
		}
		return rctx.D, rctx.DAll, nil
	}
	seen := make(map[int64]bool)
	var union []int64
	for _, sc := range c.sconns {
		part, _, err := sc.ResolveScope()
		if err != nil {
			return nil, false, err
		}
		for _, t := range part {
			if !seen[t] {
				seen[t] = true
				union = append(union, t)
			}
		}
	}
	sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
	if _, err := c.rconn.ExecStatement(&sqlast.SetScope{Simple: union}); err != nil {
		return nil, false, err
	}
	rctx, err := c.rconn.RewriteContext(priv, tables...)
	c.rconn.ExecStatement(c.sessionScope()) //nolint:errcheck // scope install cannot fail
	if err != nil {
		return nil, false, err
	}
	return rctx.D, false, nil
}

// routeQuery picks the execution strategy for one SELECT. Caller holds
// ddlMu shared.
func (c *Conn) routeQuery(ctx context.Context, sel *sqlast.Select, sql string, args []any) (*engine.Rows, error) {
	if len(c.sconns) == 1 {
		// One shard: the original scope passes through verbatim — this is
		// the differential oracle configuration.
		atomic.AddInt64(&c.srv.stats.RoutedSingle, 1)
		return c.sconns[0].QueryContext(ctx, sql, args...)
	}
	schema := c.srv.Schema()
	tables := middleware.TenantSpecificTables(sel)
	hasTenant := false
	for _, t := range tables {
		if ti := schema.Table(t); ti != nil && ti.TenantSpecific() {
			hasTenant = true
			break
		}
	}
	hasView := queryReferencesView(sel, schema)
	if !hasTenant && !hasView {
		// Pure-global query: every shard holds the same global data; run
		// on the client's home shard.
		atomic.AddInt64(&c.srv.stats.RoutedSingle, 1)
		return c.sconns[c.srv.ShardOf(c.c)].QueryContext(ctx, sql, args...)
	}
	d, _, err := c.resolveDPrime(sqlast.PrivRead, tables)
	if err != nil {
		return nil, err
	}
	if hasView {
		// A view's tenant set was baked at CREATE VIEW independently of
		// the session scope, so routing cannot see it; repartition every
		// tenant's rows to the replica and run there.
		atomic.AddInt64(&c.srv.stats.RoutedScatter, 1)
		atomic.AddInt64(&c.srv.stats.RoutedFallback, 1)
		return c.fallback(ctx, sql, args, d, true)
	}
	sets := c.srv.group(d)
	if len(sets) <= 1 {
		rank := c.srv.ShardOf(c.c)
		if len(sets) == 1 {
			rank = sets[0].rank
		}
		// All of D′ lives on one shard: the shard's own middleware
		// resolves the original session scope to the same D′ locally.
		atomic.AddInt64(&c.srv.stats.RoutedSingle, 1)
		return c.sconns[rank].QueryContext(ctx, sql, args...)
	}
	an := analyze(sel, schema)
	switch {
	case an.pinned && an.aggPush:
		atomic.AddInt64(&c.srv.stats.RoutedScatter, 1)
		atomic.AddInt64(&c.srv.stats.PartialsPushed, 1)
		return c.partialScatter(ctx, sel, args, sets, an)
	case an.pinned && an.plainScan:
		atomic.AddInt64(&c.srv.stats.RoutedScatter, 1)
		return c.scatterMerge(ctx, sel, sql, args, sets, an)
	default:
		atomic.AddInt64(&c.srv.stats.RoutedScatter, 1)
		atomic.AddInt64(&c.srv.stats.RoutedFallback, 1)
		return c.fallback(ctx, sql, args, d, false)
	}
}

// scatterMerge runs the statement unchanged on every owning shard under
// its sub-scope and gathers: ordered k-way merge when the statement
// orders its output, stable rank-order concatenation otherwise. Only
// pinned scan-shaped statements come here (analyze), so per-shard results
// partition the unsharded result by tenant.
func (c *Conn) scatterMerge(ctx context.Context, sel *sqlast.Select, sql string, args []any, sets []shardSet, an analysis) (*engine.Rows, error) {
	parts := make([]*engine.Rows, 0, len(sets))
	ranks := make([]int, 0, len(sets))
	fail := func(err error) (*engine.Rows, error) {
		for _, p := range parts {
			p.Close()
		}
		c.restoreSubs(ranks)
		return nil, err
	}
	for _, ss := range sets {
		ranks = append(ranks, ss.rank)
		if err := c.setSub(ss.rank, ss.ds); err != nil {
			return fail(err)
		}
		rows, err := c.sconns[ss.rank].QueryContext(ctx, sql, args...)
		if err != nil {
			return fail(err)
		}
		parts = append(parts, rows)
	}
	c.restoreSubs(ranks)
	cols := parts[0].Columns()
	if len(an.mergeKeys) > 0 {
		return engine.MergeRows(cols, an.mergeKeys, sel.Limit, parts...), nil
	}
	return engine.ConcatRows(cols, sel.Limit, parts...), nil
}

// fallback repartitions: the owning shards' tenant rows for D′ are copied
// into the replica's (normally empty) tenant tables, the original
// statement executes there under an explicit D′ scope, and the scratch
// rows are dropped once the cursor has pinned its snapshot. copyAll
// widens the copy to every tenant (views bake their own tenant set, which
// routing cannot see). Serialized by fbMu; the copied heaps are immutable
// shard snapshots, so shards keep serving while the fallback runs.
func (c *Conn) fallback(ctx context.Context, sql string, args []any, d []int64, copyAll bool) (*engine.Rows, error) {
	s := c.srv
	s.fbMu.Lock()
	defer s.fbMu.Unlock()
	copyD := d
	if copyAll {
		copyD = s.Tenants()
	}
	want := make(map[int64]bool, len(copyD))
	for _, t := range copyD {
		want[t] = true
	}
	schema := s.Schema()
	rdb := s.replica.DB()
	var scratch []string
	clear := func() {
		for _, name := range scratch {
			rdb.Table(name).ReplaceRows(nil)
		}
	}
	for _, ti := range schema.Tables() {
		if !ti.TenantSpecific() {
			continue
		}
		rt := rdb.Table(ti.Name)
		if rt == nil {
			continue
		}
		ttid := rt.ColIndex("ttid")
		if ttid < 0 {
			clear()
			return nil, fmt.Errorf("shard: table %s has no ttid column", ti.Name)
		}
		var rows [][]sqltypes.Value
		for _, mw := range s.shards {
			st := mw.DB().Table(ti.Name)
			if st == nil {
				continue
			}
			for _, row := range st.Heap() {
				if want[row[ttid].AsInt()] {
					rows = append(rows, row)
				}
			}
		}
		scratch = append(scratch, ti.Name)
		rt.ReplaceRows(rows)
	}
	if _, err := c.rconn.ExecStatement(&sqlast.SetScope{Simple: d}); err != nil {
		clear()
		return nil, err
	}
	rows, err := c.rconn.QueryContext(ctx, sql, args...)
	c.rconn.ExecStatement(c.sessionScope()) //nolint:errcheck // scope install cannot fail
	clear() // the cursor pinned its copy-on-write snapshot at creation
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// execInsert routes an INSERT: global targets replicate to every shard
// and the replica; tenant-specific targets split by the owning shard of
// each tenant in D′ (rewrite.Insert already derives one statement per
// target tenant).
func (c *Conn) execInsert(ctx context.Context, ins *sqlast.Insert, sql string, args []any) (*engine.Result, error) {
	c.srv.ddlMu.RLock()
	defer c.srv.ddlMu.RUnlock()
	schema := c.srv.Schema()
	info := schema.Table(ins.Table)
	tenantTarget := info != nil && info.TenantSpecific()
	var subTenant bool
	if ins.Sub != nil {
		for _, t := range middleware.TenantSpecificTables(ins.Sub) {
			if ti := schema.Table(t); ti != nil && ti.TenantSpecific() {
				subTenant = true
				break
			}
		}
	}
	if !tenantTarget {
		if subTenant && len(c.sconns) > 1 {
			return nil, fmt.Errorf("shard: INSERT into global table from tenant-specific SELECT is not supported with %d shards", len(c.sconns))
		}
		var first *engine.Result
		if _, err := c.rconn.ExecContext(ctx, sql, args...); err != nil {
			return nil, err
		}
		for _, sc := range c.sconns {
			res, err := sc.ExecContext(ctx, sql, args...)
			if err != nil {
				return nil, err
			}
			if first == nil {
				first = res
			}
		}
		return first, nil
	}
	tables := []string{ins.Table}
	if ins.Sub != nil {
		tables = append(tables, middleware.TenantSpecificTables(ins.Sub)...)
	}
	d, _, err := c.resolveDPrime(sqlast.PrivInsert, tables)
	if err != nil {
		return nil, err
	}
	sets := c.srv.group(d)
	if len(sets) <= 1 {
		rank := c.srv.ShardOf(c.c)
		if len(sets) == 1 {
			rank = sets[0].rank
		}
		atomic.AddInt64(&c.srv.stats.RoutedSingle, 1)
		return c.sconns[rank].ExecContext(ctx, sql, args...)
	}
	if subTenant {
		return nil, fmt.Errorf("shard: INSERT ... SELECT over a cross-shard tenant set is not supported")
	}
	atomic.AddInt64(&c.srv.stats.RoutedScatter, 1)
	return c.scatterExec(ctx, sql, args, sets)
}

// execTargetedDML routes UPDATE/DELETE by the target table: per-tenant
// application splits cleanly by owning shard.
func (c *Conn) execTargetedDML(ctx context.Context, table string, priv sqlast.Privilege, sql string, args []any) (*engine.Result, error) {
	c.srv.ddlMu.RLock()
	defer c.srv.ddlMu.RUnlock()
	schema := c.srv.Schema()
	info := schema.Table(table)
	if info == nil || !info.TenantSpecific() {
		// Global target: replicate the write everywhere.
		var first *engine.Result
		if _, err := c.rconn.ExecContext(ctx, sql, args...); err != nil {
			return nil, err
		}
		for _, sc := range c.sconns {
			res, err := sc.ExecContext(ctx, sql, args...)
			if err != nil {
				return nil, err
			}
			if first == nil {
				first = res
			}
		}
		return first, nil
	}
	d, _, err := c.resolveDPrime(priv, []string{table})
	if err != nil {
		return nil, err
	}
	sets := c.srv.group(d)
	if len(sets) <= 1 {
		rank := c.srv.ShardOf(c.c)
		if len(sets) == 1 {
			rank = sets[0].rank
		}
		atomic.AddInt64(&c.srv.stats.RoutedSingle, 1)
		return c.sconns[rank].ExecContext(ctx, sql, args...)
	}
	atomic.AddInt64(&c.srv.stats.RoutedScatter, 1)
	return c.scatterExec(ctx, sql, args, sets)
}

// scatterExec runs a mutating statement on every owning shard under its
// sub-scope, summing affected counts (per-tenant effects are disjoint).
func (c *Conn) scatterExec(ctx context.Context, sql string, args []any, sets []shardSet) (*engine.Result, error) {
	ranks := make([]int, 0, len(sets))
	defer func() { c.restoreSubs(ranks) }()
	affected := 0
	for _, ss := range sets {
		ranks = append(ranks, ss.rank)
		if err := c.setSub(ss.rank, ss.ds); err != nil {
			return nil, err
		}
		res, err := c.sconns[ss.rank].ExecContext(ctx, sql, args...)
		if err != nil {
			return nil, err
		}
		affected += res.Affected
	}
	return &engine.Result{Affected: affected}, nil
}

// execDDL fans a schema/privilege statement out to the replica and every
// shard under the exclusive schema barrier. The replica goes first: a
// statement that fails its checks (privileges, unknown table) fails there
// before any shard changed. Statements whose semantics bake the resolved
// scope (CREATE VIEW; GRANT/REVOKE ... TO ALL) are pre-resolved globally
// when the session scope is complex — each server evaluating a complex
// scope against its own partition would diverge.
func (c *Conn) execDDL(stmt sqlast.Statement, sql string) (*engine.Result, error) {
	c.srv.ddlMu.Lock()
	defer c.srv.ddlMu.Unlock()
	if needsResolvedScope(stmt) && c.scope != nil && c.scope.Complex != nil {
		seen := make(map[int64]bool)
		var union []int64
		for _, sc := range c.sconns {
			part, _, err := sc.ResolveScope()
			if err != nil {
				return nil, err
			}
			for _, t := range part {
				if !seen[t] {
					seen[t] = true
					union = append(union, t)
				}
			}
		}
		sort.Slice(union, func(i, j int) bool { return union[i] < union[j] })
		resolved := &sqlast.SetScope{Simple: union}
		orig := c.scope
		conns := append([]*middleware.Conn{c.rconn}, c.sconns...)
		for _, sc := range conns {
			sc.ExecStatement(resolved) //nolint:errcheck // scope install cannot fail
		}
		defer func() {
			for _, sc := range conns {
				sc.ExecStatement(orig) //nolint:errcheck // scope install cannot fail
			}
		}()
	}
	if _, err := c.rconn.Exec(sql); err != nil {
		return nil, err
	}
	var first *engine.Result
	for _, sc := range c.sconns {
		res, err := sc.Exec(sql)
		if err != nil {
			return nil, fmt.Errorf("shard: DDL diverged across shards (replica succeeded): %w", err)
		}
		if first == nil {
			first = res
		}
	}
	return first, nil
}

// needsResolvedScope reports whether a statement's effect bakes the
// session's resolved dataset into durable state.
func needsResolvedScope(stmt sqlast.Statement) bool {
	switch st := stmt.(type) {
	case *sqlast.CreateView:
		return true
	case *sqlast.Grant:
		return st.GranteeAll
	case *sqlast.Revoke:
		return st.GranteeAll
	}
	return false
}

// RewriteSQL rewrites and optimizes a query without executing it — the
// text a single-shard route would run, or the replica's rewrite under the
// pre-resolved global D′ for cross-shard statements.
func (c *Conn) RewriteSQL(sql string) (*sqlast.Select, error) {
	sel, err := c.srv.parseSelect(sql)
	if err != nil {
		return nil, err
	}
	c.srv.ddlMu.RLock()
	defer c.srv.ddlMu.RUnlock()
	if len(c.sconns) == 1 {
		return c.sconns[0].RewriteSQL(sql)
	}
	tables := middleware.TenantSpecificTables(sel)
	d, _, err := c.resolveDPrime(sqlast.PrivRead, tables)
	if err != nil {
		return nil, err
	}
	sets := c.srv.group(d)
	if len(sets) == 1 {
		return c.sconns[sets[0].rank].RewriteSQL(sql)
	}
	if _, err := c.rconn.ExecStatement(&sqlast.SetScope{Simple: d}); err != nil {
		return nil, err
	}
	defer c.rconn.ExecStatement(c.sessionScope()) //nolint:errcheck // scope install cannot fail
	return c.rconn.RewriteSQL(sql)
}

// queryReferencesView reports whether any table name anywhere in the
// query resolves to a stored view.
func queryReferencesView(sel *sqlast.Select, schema interface {
	View(name string) []string
}) bool {
	found := false
	var visitQ func(s *sqlast.Select)
	var visitTE func(te sqlast.TableExpr)
	visitExpr := func(e sqlast.Expr) {
		if e == nil {
			return
		}
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			switch x := n.(type) {
			case *sqlast.SubqueryExpr:
				visitQ(x.Sub)
			case *sqlast.ExistsExpr:
				visitQ(x.Sub)
			case *sqlast.InExpr:
				if x.Sub != nil {
					visitQ(x.Sub)
				}
			case *sqlast.Select:
				visitQ(x)
			}
			return !found
		})
	}
	visitTE = func(te sqlast.TableExpr) {
		switch x := te.(type) {
		case *sqlast.TableName:
			if schema.View(x.Name) != nil {
				found = true
			}
		case *sqlast.DerivedTable:
			visitQ(x.Sub)
		case *sqlast.JoinExpr:
			visitTE(x.L)
			visitTE(x.R)
		}
	}
	visitQ = func(s *sqlast.Select) {
		if s == nil || found {
			return
		}
		for _, te := range s.From {
			visitTE(te)
		}
		for _, it := range s.Items {
			visitExpr(it.Expr)
		}
		visitExpr(s.Where)
		visitExpr(s.Having)
	}
	visitQ(sel)
	return found
}
