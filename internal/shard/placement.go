package shard

// Placement maps a tenant to the rank of the shard owning its rows. A
// placement is fixed for the lifetime of a sharded server: every loader,
// router and write path consults the same function, so a tenant's rows
// live on exactly one shard by construction. Implementations must be pure
// (same tenant → same rank, no state mutation): routing calls them
// concurrently and caches nothing.
type Placement interface {
	ShardOf(ttid int64) int
}

// HashPlacement spreads tenants uniformly over n shards with a
// multiplicative hash — the default when no heat information exists.
type HashPlacement struct {
	N int
}

// ShardOf implements Placement. The mix keeps consecutive tenant ids
// (the common allocation pattern) from all landing on one shard while
// staying deterministic across processes.
func (h HashPlacement) ShardOf(ttid int64) int {
	if h.N <= 1 {
		return 0
	}
	x := uint64(ttid)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	return int(x % uint64(h.N))
}

// MapPlacement pins chosen tenants to explicit shards — the hook for
// heat-based placement (co-locate hot tenants, or isolate them) — and
// delegates everyone else to a fallback placement.
type MapPlacement struct {
	Assign   map[int64]int
	Fallback Placement
}

// ShardOf implements Placement.
func (m MapPlacement) ShardOf(ttid int64) int {
	if rank, ok := m.Assign[ttid]; ok {
		return rank
	}
	return m.Fallback.ShardOf(ttid)
}
