package shard

// Pinned-query classification (DESIGN.md ADR-009).
//
// The MTBase rewrite appends `a.ttid = b.ttid` for every comparison
// predicate over tenant-specific (SPECIFIC) attributes of two bindings,
// and tuple-extends `ts_attr IN (SELECT ts_attr ...)` with ttid on both
// sides (internal/rewrite, §2.4.2/§3.1). Those injected equalities chain:
// viewing tenant-specific bindings as nodes and the injected equalities as
// edges, every binding in one connected component is constrained to the
// same ttid at execution time — at any nesting depth, because each edge
// is literally a ttid-equality predicate in the rewritten SQL.
//
// A query is "pinned" when ALL tenant-specific bindings, across every
// block, form ONE component: each result row then derives from rows of
// exactly one tenant, so executing the statement per shard under the
// sub-scope D ∩ owned(shard) partitions the unsharded result exactly.
//
// Derived tables are the one boundary the chain cannot cross — the
// rewrite treats derived outputs as plain comparable attributes and never
// injects ttid through them — and grouping/DISTINCT/LIMIT inside a
// non-top block erases row-level tenant identity (groups merge by value
// across tenants, limits apply to cross-tenant heap order). Hence the
// conservative rules below; anything rejected routes through the exact
// repartition fallback instead.

import (
	"strings"

	"mtbase/internal/engine"
	"mtbase/internal/mtsql"
	"mtbase/internal/sqlast"
)

// analysis is the routing classification of one cross-shard SELECT.
type analysis struct {
	pinned    bool
	plainScan bool              // pinned scan shape: scatter + concat/merge
	aggPush   bool              // pinned aggregation: push partials, fold at gather
	mergeKeys []engine.MergeKey // ORDER BY as output-column merge keys (plainScan)
	plan      *partialPlan      // partial/combine ASTs (aggPush)
}

// rtBinding mirrors the rewrite resolver's binding: one FROM item of one
// block. uf >= 0 names the union-find node of a tenant-specific binding.
type rtBinding struct {
	name    string
	info    *mtsql.TableInfo
	outputs map[string]bool
	uf      int
}

// rtScope chains binding scopes across nested blocks, mirroring the
// rewrite's correlated-reference resolution order exactly.
type rtScope struct {
	parent   *rtScope
	bindings []*rtBinding
}

func (s *rtScope) resolve(ref *sqlast.ColumnRef) *rtBinding {
	tl := strings.ToLower(ref.Table)
	cl := strings.ToLower(ref.Name)
	for sc := s; sc != nil; sc = sc.parent {
		for _, b := range sc.bindings {
			if tl != "" && b.name != tl {
				continue
			}
			if b.info != nil {
				if cl == mtsql.TTIDColumn {
					if b.info.TenantSpecific() && tl != "" {
						return b
					}
					continue
				}
				if b.info.Column(ref.Name) != nil {
					return b
				}
			} else if b.outputs[cl] {
				return b
			}
		}
	}
	return nil
}

// specificBinding returns the binding when ref resolves to a SPECIFIC
// attribute of a tenant table, else nil.
func (s *rtScope) specificBinding(ref *sqlast.ColumnRef) *rtBinding {
	b := s.resolve(ref)
	if b == nil || b.info == nil {
		return nil
	}
	ci := b.info.Column(ref.Name)
	if ci == nil || ci.Comparability != sqlast.Specific {
		return nil
	}
	return b
}

// classifier accumulates the union-find over tenant bindings.
type classifier struct {
	schema *mtsql.Schema
	parent []int                     // union-find
	nodes  map[*sqlast.TableName]int // union-find node per tenant TableName occurrence
	bad    bool                      // any rule violated → not pinned
}

func (c *classifier) newNode() int {
	c.parent = append(c.parent, len(c.parent))
	return len(c.parent) - 1
}

func (c *classifier) find(x int) int {
	for c.parent[x] != x {
		c.parent[x] = c.parent[c.parent[x]]
		x = c.parent[x]
	}
	return x
}

func (c *classifier) union(a, b int) { c.parent[c.find(a)] = c.find(b) }

func (c *classifier) components() int {
	n := 0
	for i := range c.parent {
		if c.find(i) == i {
			n++
		}
	}
	return n
}

// analyze classifies a cross-shard SELECT. The caller has already
// dispatched view queries to the fallback, so unknown tables here mark
// the query unpinned conservatively.
func analyze(sel *sqlast.Select, schema *mtsql.Schema) analysis {
	c := &classifier{schema: schema}
	c.visitSelect(sel, nil, true)
	an := analysis{pinned: !c.bad && c.components() <= 1}
	if !an.pinned {
		return an
	}
	if topHasAggregation(sel) {
		if plan, ok := buildPartialPlan(sel); ok {
			an.aggPush = true
			an.plan = plan
		}
		return an
	}
	if sel.Distinct || sel.Having != nil {
		return an
	}
	keys, ok := mapOrderKeys(sel)
	if !ok {
		return an
	}
	an.plainScan = true
	an.mergeKeys = keys
	return an
}

// visitSelect processes one block: builds its binding scope (mirroring
// buildResolver's order, so derived subqueries see the bindings declared
// before them), collects ttid-equality edges from WHERE/ON/HAVING, and
// recurses into nested blocks. Returns whether the block or any
// descendant binds a tenant-specific table.
func (c *classifier) visitSelect(sel *sqlast.Select, parent *rtScope, top bool) bool {
	scope := &rtScope{parent: parent}
	hasTenant := false
	var visitFrom func(te sqlast.TableExpr)
	visitFrom = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.TableName:
			b := &rtBinding{name: strings.ToLower(t.Binding()), uf: -1}
			if info := c.schema.Table(t.Name); info != nil {
				b.info = info
				if info.TenantSpecific() {
					b.uf = c.nodeFor(t)
					hasTenant = true
				}
			} else if cols := c.schema.View(t.Name); cols != nil {
				// Views bake their own tenant set; the router already
				// forces them through the fallback.
				b.outputs = make(map[string]bool, len(cols))
				for _, col := range cols {
					b.outputs[strings.ToLower(col)] = true
				}
				c.bad = true
			} else {
				c.bad = true
			}
			scope.bindings = append(scope.bindings, b)
		case *sqlast.DerivedTable:
			inner := c.visitSelect(t.Sub, scope, false)
			if inner && !plainBlock(t.Sub) {
				// Grouped/distinct/limited derived rows merge or cut
				// across tenants; their tenant identity is gone.
				c.bad = true
			}
			hasTenant = hasTenant || inner
			scope.bindings = append(scope.bindings, &rtBinding{
				name:    strings.ToLower(t.Alias),
				outputs: outputColumnSet(t.Sub),
				uf:      -1,
			})
		case *sqlast.JoinExpr:
			visitFrom(t.L)
			visitFrom(t.R)
		}
	}
	for _, te := range sel.From {
		visitFrom(te)
	}

	if !top && hasTenant && (sel.Limit >= 0 || sel.Distinct) {
		// A nested LIMIT/DISTINCT over tenant rows is order- or
		// value-sensitive across the whole dataset, not per tenant.
		c.bad = true
	}

	// Edge collection mirrors rewriteBoolExpr's application sites: WHERE,
	// every JOIN ON, HAVING. Select items and GROUP BY only contribute
	// their nested subqueries (the rewrite adds no ttid pairs there).
	var visitOns func(te sqlast.TableExpr)
	visitOns = func(te sqlast.TableExpr) {
		if j, ok := te.(*sqlast.JoinExpr); ok {
			visitOns(j.L)
			visitOns(j.R)
			if j.On != nil {
				c.collectEdges(j.On, scope)
			}
		}
	}
	for _, te := range sel.From {
		visitOns(te)
	}
	if sel.Where != nil {
		hasTenant = c.collectEdges(sel.Where, scope) || hasTenant
	}
	if sel.Having != nil {
		hasTenant = c.collectEdges(sel.Having, scope) || hasTenant
	}
	for _, it := range sel.Items {
		hasTenant = c.visitSubqueriesOnly(it.Expr, scope) || hasTenant
	}
	for _, g := range sel.GroupBy {
		hasTenant = c.visitSubqueriesOnly(g, scope) || hasTenant
	}
	return hasTenant
}

// collectEdges walks a predicate the way analyzeTenantSpecific does:
// comparisons over SPECIFIC attributes of two bindings become union-find
// edges, tenant-specific IN-subqueries link the two sides, and nested
// subqueries recurse with the chained scope. Returns whether any nested
// block binds a tenant table.
func (c *classifier) collectEdges(e sqlast.Expr, scope *rtScope) bool {
	nested := false
	link := func(operands ...sqlast.Expr) {
		var nodes []int
		for _, op := range operands {
			for _, cr := range sqlast.ColumnRefsOf(op) {
				if b := scope.specificBinding(cr); b != nil && b.uf >= 0 {
					nodes = append(nodes, b.uf)
				}
			}
		}
		for i := 1; i < len(nodes); i++ {
			c.union(nodes[0], nodes[i])
		}
	}
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.BinaryExpr:
			switch x.Op {
			case "=", "<>", "<", "<=", ">", ">=":
				link(x.L, x.R)
				nested = c.visitSubqueriesOnly(x.L, scope) || nested
				nested = c.visitSubqueriesOnly(x.R, scope) || nested
				return false
			}
		case *sqlast.BetweenExpr:
			link(x.X, x.Lo, x.Hi)
			return false
		case *sqlast.LikeExpr:
			link(x.X, x.Pattern)
			return false
		case *sqlast.InExpr:
			if x.Sub == nil {
				ops := append([]sqlast.Expr{x.X}, x.List...)
				link(ops...)
				return false
			}
			nested = c.visitInSub(x, scope) || nested
			return false
		case *sqlast.ExistsExpr:
			nested = c.visitSelect(x.Sub, scope, false) || nested
			return false
		case *sqlast.SubqueryExpr:
			nested = c.visitSelect(x.Sub, scope, false) || nested
			return false
		}
		return true
	})
	return nested
}

// visitSubqueriesOnly recurses into the subqueries of an expression that
// sits outside the rewrite's boolean positions (select items, GROUP BY):
// nested blocks there are rewritten as independent blocks, so they
// contribute bindings but no ttid edges at this level. An IN-subquery
// here gets no tuple extension either, so only its block is visited.
func (c *classifier) visitSubqueriesOnly(e sqlast.Expr, scope *rtScope) bool {
	nested := false
	sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
		switch x := n.(type) {
		case *sqlast.InExpr:
			if x.Sub != nil {
				nested = c.visitSelect(x.Sub, scope, false) || nested
				return false
			}
		case *sqlast.ExistsExpr:
			nested = c.visitSelect(x.Sub, scope, false) || nested
			return false
		case *sqlast.SubqueryExpr:
			nested = c.visitSelect(x.Sub, scope, false) || nested
			return false
		}
		return true
	})
	return nested
}

// visitInSub handles `attr IN (SELECT item ...)`: the rewrite carries
// ttid on both sides when attr and item are both SPECIFIC, linking the
// outer binding with the subquery item's binding.
func (c *classifier) visitInSub(in *sqlast.InExpr, scope *rtScope) bool {
	// Build the sub's scope first (its bindings may be edge endpoints).
	nested := c.visitSelect(in.Sub, scope, false)
	cr, ok := in.X.(*sqlast.ColumnRef)
	if !ok {
		return nested
	}
	outer := scope.specificBinding(cr)
	if outer == nil || outer.uf < 0 {
		return nested
	}
	if len(in.Sub.Items) != 1 || in.Sub.Items[0].Star {
		return nested
	}
	subCr, ok := in.Sub.Items[0].Expr.(*sqlast.ColumnRef)
	if !ok {
		return nested
	}
	// Resolve the sub item in the sub's own scope (chained to ours).
	subScope := c.rebuildScope(in.Sub, scope)
	innerB := subScope.specificBinding(subCr)
	if innerB != nil && innerB.uf >= 0 {
		c.union(outer.uf, innerB.uf)
	}
	return nested
}

// rebuildScope rebuilds a block's binding scope without re-walking its
// predicates (visitSelect already collected that block's edges; reusing
// resolve() here only needs names). Derived tables inside get output-only
// bindings; no new union-find nodes are created.
func (c *classifier) rebuildScope(sel *sqlast.Select, parent *rtScope) *rtScope {
	scope := &rtScope{parent: parent}
	var visit func(te sqlast.TableExpr)
	visit = func(te sqlast.TableExpr) {
		switch t := te.(type) {
		case *sqlast.TableName:
			b := &rtBinding{name: strings.ToLower(t.Binding()), uf: -1}
			if info := c.schema.Table(t.Name); info != nil {
				b.info = info
				if info.TenantSpecific() {
					// The memo returns the node visitSelect created for
					// this same TableName occurrence, so unions through
					// this rebuilt binding land in the right component.
					b.uf = c.nodeFor(t)
				}
			} else if cols := c.schema.View(t.Name); cols != nil {
				b.outputs = make(map[string]bool, len(cols))
				for _, col := range cols {
					b.outputs[strings.ToLower(col)] = true
				}
			}
			scope.bindings = append(scope.bindings, b)
		case *sqlast.DerivedTable:
			scope.bindings = append(scope.bindings, &rtBinding{
				name:    strings.ToLower(t.Alias),
				outputs: outputColumnSet(t.Sub),
				uf:      -1,
			})
		case *sqlast.JoinExpr:
			visit(t.L)
			visit(t.R)
		}
	}
	for _, te := range sel.From {
		visit(te)
	}
	return scope
}

// nodeFor memoizes the union-find node per tenant TableName occurrence,
// so rebuildScope resolves into the same component visitSelect built.
func (c *classifier) nodeFor(tn *sqlast.TableName) int {
	if c.nodes == nil {
		c.nodes = make(map[*sqlast.TableName]int)
	}
	if id, ok := c.nodes[tn]; ok {
		return id
	}
	id := c.newNode()
	c.nodes[tn] = id
	return id
}

// plainBlock reports whether a derived-table block is a plain projection
// (no grouping, aggregation, DISTINCT or LIMIT) — the shape that keeps
// one output row per underlying (single-tenant) join row.
func plainBlock(sel *sqlast.Select) bool {
	if len(sel.GroupBy) > 0 || sel.Distinct || sel.Limit >= 0 || sel.Having != nil {
		return false
	}
	return !topHasAggregation(sel)
}

// topHasAggregation reports grouping or aggregate calls at a block's own
// level (subqueries are boundaries, exactly as in the engine).
func topHasAggregation(sel *sqlast.Select) bool {
	if len(sel.GroupBy) > 0 {
		return true
	}
	found := false
	check := func(e sqlast.Expr) {
		sqlast.WalkExpr(e, func(n sqlast.Expr) bool {
			if fc, ok := n.(*sqlast.FuncCall); ok && engine.IsAggregate(fc.Name) {
				found = true
			}
			return !found
		})
	}
	for _, it := range sel.Items {
		check(it.Expr)
	}
	check(sel.Having)
	for _, o := range sel.OrderBy {
		check(o.Expr)
	}
	return found
}

// outputColumnSet mirrors the rewrite's outputColumns.
func outputColumnSet(q *sqlast.Select) map[string]bool {
	out := make(map[string]bool)
	for _, it := range q.Items {
		switch {
		case it.Alias != "":
			out[strings.ToLower(it.Alias)] = true
		case it.Expr != nil:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				out[strings.ToLower(cr.Name)] = true
			} else {
				out[strings.ToLower(it.Expr.String())] = true
			}
		}
	}
	return out
}

// outputNames mirrors the engine's output-column naming for a block with
// no star items (stars make names placement-dependent → unmappable).
func outputNames(sel *sqlast.Select) ([]string, bool) {
	names := make([]string, 0, len(sel.Items))
	for _, it := range sel.Items {
		if it.Star {
			return nil, false
		}
		switch {
		case it.Alias != "":
			names = append(names, it.Alias)
		default:
			if cr, ok := it.Expr.(*sqlast.ColumnRef); ok {
				names = append(names, cr.Name)
			} else {
				names = append(names, it.Expr.String())
			}
		}
	}
	return names, true
}

// mapOrderKeys maps each ORDER BY item onto an output column position so
// the gather can k-way merge. Items that are not plain references to an
// output column (by alias, column name, or textual equality with the
// item expression) make the statement unmergeable → fallback.
func mapOrderKeys(sel *sqlast.Select) ([]engine.MergeKey, bool) {
	if len(sel.OrderBy) == 0 {
		return nil, true
	}
	names, ok := outputNames(sel)
	if !ok {
		return nil, false
	}
	keys := make([]engine.MergeKey, 0, len(sel.OrderBy))
	for _, o := range sel.OrderBy {
		idx := -1
		if cr, ok := o.Expr.(*sqlast.ColumnRef); ok && cr.Table == "" {
			for i, n := range names {
				if strings.EqualFold(n, cr.Name) {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			want := o.Expr.String()
			for i, it := range sel.Items {
				if it.Expr != nil && it.Expr.String() == want {
					idx = i
					break
				}
			}
		}
		if idx < 0 {
			return nil, false
		}
		keys = append(keys, engine.MergeKey{Col: idx, Desc: o.Desc})
	}
	return keys, true
}
