package lint

import (
	"go/ast"
	"go/types"
	"sort"
)

// LockPull flags batch pulls performed while a sync.Mutex / sync.RWMutex
// is held. Pulling a batch (Operator.Next, Rows.Next/Collect, the cursor's
// pull helper) can run UDFs, spill to disk and stream arbitrary amounts of
// data; holding DB.mu across one starves every writer for the cursor's
// lifetime — the bug class PR 5 removed by re-acquiring the lock per
// batch. The analysis is intra-function and lexical: it tracks Lock/RLock
// and Unlock/RUnlock calls in source order (a deferred Unlock keeps the
// lock held to function end) and reports any pull call made while at
// least one lock is held. Functions that are *entered* with a lock held
// are the caller's responsibility — the caller's own Lock is in scope
// there.
var LockPull = &Analyzer{
	Name: "lockpull",
	Doc: "report Operator.Next / Rows.Next / Rows.Collect calls made while a " +
		"sync mutex is held; batch pulls must run lock-free against pinned snapshots",
	Run: runLockPull,
}

func runLockPull(pass *Pass) error {
	scope := scopeFor(pass)
	if scope.operator == nil && scope.rows == nil {
		return nil // no engine types in scope; nothing to pull
	}
	funcDecls(pass, func(fn *ast.FuncDecl) {
		checkLockPull(pass, scope, fn)
	})
	return nil
}

// lockEvent is one lock-relevant point in a function body, keyed by the
// printed receiver expression ("db.mu", "r.mu.RLocker()" is out of scope).
type lockEvent struct {
	pos   int // token.Pos as int, for sorting
	kind  int // 0 acquire, 1 release, 2 pull
	expr  string
	node  ast.Node
	label string // pull target description
}

func checkLockPull(pass *Pass, scope *engineScope, fn *ast.FuncDecl) {
	var events []lockEvent
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			// A deferred Unlock releases only at return — the lock stays
			// held for the rest of the body, so record nothing; a deferred
			// pull is exotic enough to ignore.
			return false
		case *ast.FuncLit:
			// Closures run at an unknown time relative to the lock.
			return false
		case *ast.CallExpr:
			recv, name := methodCall(st)
			if recv == nil {
				return true
			}
			switch name {
			case "Lock", "RLock":
				if isMutex(pass.Info.Types[recv].Type) {
					events = append(events, lockEvent{pos: int(st.Pos()), kind: 0, expr: types.ExprString(recv)})
				}
			case "Unlock", "RUnlock":
				if isMutex(pass.Info.Types[recv].Type) {
					events = append(events, lockEvent{pos: int(st.Pos()), kind: 1, expr: types.ExprString(recv)})
				}
			case "Next", "Collect", "pull":
				rt := pass.Info.Types[recv].Type
				if scope.implementsOperator(rt) || scope.isRows(rt) {
					events = append(events, lockEvent{
						pos: int(st.Pos()), kind: 2, node: st,
						label: types.ExprString(recv) + "." + name,
					})
				}
			}
		}
		return true
	})
	sort.SliceStable(events, func(i, j int) bool { return events[i].pos < events[j].pos })

	held := map[string]bool{}
	for _, ev := range events {
		switch ev.kind {
		case 0:
			held[ev.expr] = true
		case 1:
			delete(held, ev.expr)
		case 2:
			if len(held) > 0 {
				var locks []string
				for e := range held {
					locks = append(locks, e)
				}
				sort.Strings(locks)
				pass.Reportf(ev.node.Pos(),
					"%s pulls a batch while %s is held; release the lock before pulling (pins/snapshots make pulls lock-free)",
					ev.label, locks[0])
			}
		}
	}
}
