package lint

import (
	"go/ast"
	"go/types"
)

// SpillSafe enforces the spill temp-file discipline from PR 7: every
// overflow file must be registered with the statement's spillRegistry so
// Rows.Close / statement end can remove it on any exit path. Concretely:
//
//  1. os.CreateTemp may be called only by a spillFS implementation (the
//     one seam fault-injection tests can intercept);
//  2. the spillFS.create seam may be called only from the registering
//     constructor (*exec).newSpillFile;
//  3. a function that acquires a file from newSpillFile must either hand
//     ownership on (store it in a field, slice or map, return it, or pass
//     it to another function) or drop it via remove/dropSpillFile —
//     acquiring a registered file and leaking the reference leaves the
//     registry as the only cleanup, which turns per-statement cleanup into
//     end-of-statement cleanup and hides real leaks from the fault tests.
var SpillSafe = &Analyzer{
	Name: "spillsafe",
	Doc: "report spill temp files created outside the registered " +
		"(*exec).newSpillFile/spillFS seam, and acquired spill files that are " +
		"neither stored nor cleaned up",
	Run: runSpillSafe,
}

func runSpillSafe(pass *Pass) error {
	scope := scopeFor(pass)
	if scope.spillFS == nil {
		return nil
	}
	funcDecls(pass, func(fn *ast.FuncDecl) {
		recvImplementsSpillSeam := false
		if rt := recvType(pass, fn); rt != nil && scope.spillFS != nil {
			if typesImplements(rt, scope.spillFS) {
				recvImplementsSpillSeam = true
			}
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			// Rule 1: os.CreateTemp only inside a spillFS implementation.
			if obj := calleeIn(pass, call); obj != nil && obj.Pkg() != nil &&
				obj.Pkg().Path() == "os" && obj.Name() == "CreateTemp" && !recvImplementsSpillSeam {
				pass.Reportf(call.Pos(),
					"os.CreateTemp outside a spillFS implementation; spill files must be created through (*exec).newSpillFile so they are registered for cleanup")
			}
			// Rule 2: the spillFS.create seam only from newSpillFile.
			if recv, name := methodCall(call); recv != nil && name == "create" {
				if rt := pass.Info.Types[recv].Type; typesImplements(rt, scope.spillFS) && fn.Name.Name != "newSpillFile" {
					pass.Reportf(call.Pos(),
						"spillFS.create called outside (*exec).newSpillFile; the file would bypass the spill registry")
				}
			}
			return true
		})
		checkSpillOwnership(pass, scope, fn)
	})
	return nil
}

// checkSpillOwnership applies rule 3: locals bound to a newSpillFile
// result must be stored, returned, passed on, or dropped somewhere in the
// function.
func checkSpillOwnership(pass *Pass, scope *engineScope, fn *ast.FuncDecl) {
	// Find `f, err := x.newSpillFile()` bindings.
	type acquisition struct {
		ident *ast.Ident
		call  *ast.CallExpr
	}
	var acqs []acquisition
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name := methodCall(call); name != "newSpillFile" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok && id.Name != "_" {
			acqs = append(acqs, acquisition{ident: id, call: call})
		}
		return true
	})
	for _, acq := range acqs {
		obj := pass.Info.Defs[acq.ident]
		if obj == nil {
			obj = pass.Info.Uses[acq.ident]
		}
		if obj == nil {
			continue
		}
		owned := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if owned {
				return false
			}
			switch st := n.(type) {
			case *ast.AssignStmt:
				// Storing the file anywhere (field, slice element, another
				// variable) transfers ownership; so does appending it. A
				// blank-identifier assignment does not — `_ = f` silences
				// the compiler, not the leak.
				for i, rhs := range st.Rhs {
					if !usesObj(pass, rhs, obj) {
						continue
					}
					lhs := st.Lhs[0]
					if i < len(st.Lhs) {
						lhs = st.Lhs[i]
					}
					if id, ok := ast.Unparen(lhs).(*ast.Ident); ok && (id.Name == "_" || pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj) {
						continue
					}
					owned = true
				}
			case *ast.ReturnStmt:
				for _, r := range st.Results {
					if usesObj(pass, r, obj) {
						owned = true
					}
				}
			case *ast.CallExpr:
				if st == acq.call {
					return true
				}
				// Passing the file to any call — dropSpillFile, register, a
				// writer constructor — or invoking remove()/finish() on it.
				recv, name := methodCall(st)
				if recv != nil && isIdentFor(pass, recv, obj) && (name == "remove" || name == "finish") {
					owned = true
				}
				for _, arg := range st.Args {
					if usesObj(pass, arg, obj) {
						owned = true
					}
				}
			}
			return true
		})
		if !owned {
			pass.Reportf(acq.call.Pos(),
				"spill file %s is acquired but never stored, returned, passed on or dropped; only the end-of-statement registry backstop would remove it",
				acq.ident.Name)
		}
	}
}

// usesObj reports whether expr mentions the object.
func usesObj(pass *Pass, expr ast.Expr, obj types.Object) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.Info.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

// isIdentFor reports whether expr is exactly an identifier bound to obj.
func isIdentFor(pass *Pass, expr ast.Expr, obj types.Object) bool {
	id, ok := ast.Unparen(expr).(*ast.Ident)
	return ok && (pass.Info.Uses[id] == obj || pass.Info.Defs[id] == obj)
}

// typesImplements reports whether t or *t satisfies iface.
func typesImplements(t types.Type, iface *types.Interface) bool {
	if t == nil || iface == nil {
		return false
	}
	if types.Implements(t, iface) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), iface)
	}
	return false
}
