// Package lint implements mtlint, the project's static-analysis suite: six
// analyzers that mechanize the engine's concurrency, determinism and
// resource invariants (see DESIGN.md ADR-007), plus the package loader and
// driver that run them over the module.
//
// The types here deliberately mirror golang.org/x/tools/go/analysis
// (Analyzer, Pass, Diagnostic, pass.Reportf) so the analyzers read like —
// and can mechanically migrate to — standard go/analysis checkers. The
// build environment has no module proxy access and an empty module cache,
// so x/tools itself cannot be a dependency; everything below is built on
// the standard library only (go/ast, go/types, and `go list -export` for
// dependency export data).
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer is one named invariant check. Run inspects a single package via
// its Pass and reports findings; analyzers are stateless and safe to run
// over any number of packages.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //mtlint:ignore <name> <reason> directives.
	Name string
	// Doc is the one-paragraph description printed by `mtlint -list`.
	Doc string
	// Run performs the check. It reports findings through the pass and
	// returns an error only for operational failures (not findings).
	Run func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer *Analyzer
	Fset     *token.FileSet
	Files    []*ast.File
	Pkg      *types.Package
	Info     *types.Info

	report func(Diagnostic)
}

// Diagnostic is one finding at one position.
type Diagnostic struct {
	Pos      token.Pos
	Analyzer string
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Analyzer: p.Analyzer.Name, Message: fmt.Sprintf(format, args...)})
}

// Analyzers returns the full mtlint suite in stable order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		LockPull,
		AtomicStats,
		SpillSafe,
		CtxPoll,
		DetMap,
		SnapMut,
	}
}
