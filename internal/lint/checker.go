package lint

import (
	"fmt"
	"io"
	"sort"
)

// Run loads patterns relative to dir, applies every analyzer to every
// loaded package, filters //mtlint:ignore suppressions, prints surviving
// findings to w (sorted by position) and returns their count. An error
// means the analysis itself could not run — not that findings exist.
func Run(w io.Writer, dir string, analyzers []*Analyzer, patterns ...string) (int, error) {
	pkgs, err := Load(dir, patterns...)
	if err != nil {
		return 0, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		diags, err := runPackage(pkg, analyzers)
		if err != nil {
			return 0, err
		}
		all = append(all, diags...)
	}
	// Positions from different packages share one FileSet (Load uses a
	// single one), so global position sorting is meaningful.
	if len(pkgs) > 0 {
		fset := pkgs[0].Fset
		sort.Slice(all, func(i, j int) bool {
			pi, pj := fset.Position(all[i].Pos), fset.Position(all[j].Pos)
			if pi.Filename != pj.Filename {
				return pi.Filename < pj.Filename
			}
			if pi.Line != pj.Line {
				return pi.Line < pj.Line
			}
			return all[i].Analyzer < all[j].Analyzer
		})
		for _, d := range all {
			fmt.Fprintf(w, "%s: [%s] %s\n", fset.Position(d.Pos), d.Analyzer, d.Message)
		}
	}
	return len(all), nil
}

// runPackage applies analyzers to one package and returns the findings
// that survive ignore directives, plus any malformed-directive reports.
func runPackage(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	idx, malformed := buildIgnoreIndex(pkg.Fset, pkg.Files)
	diags := malformed
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer: a,
			Fset:     pkg.Fset,
			Files:    pkg.Files,
			Pkg:      pkg.Types,
			Info:     pkg.Info,
		}
		pass.report = func(d Diagnostic) {
			if !idx.suppressed(pkg.Fset, d) {
				diags = append(diags, d)
			}
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("lint: %s on %s: %v", a.Name, pkg.Path, err)
		}
	}
	return diags, nil
}
