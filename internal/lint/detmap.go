package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// DetMap guards the byte-identity guarantee: inside the engine (any
// package that declares the Operator interface — the engine itself and the
// test fixtures), iterating a map in an order-sensitive way is forbidden,
// because Go randomizes map iteration order and the differential suites
// (ADR-005/006) require byte-identical output across runs, compile modes,
// parallelism settings and memory budgets. A `range m` loop is flagged
// when its body leaks iteration order into state that survives the loop:
// appending to an outer slice, folding into an outer float or string
// accumulator (float addition is not associative; string concat is not
// commutative), writing to an io writer, or sending on a channel. Loops
// that only delete, count, fold integers, or populate another map are
// order-insensitive and pass. Sites that sort the collected keys
// afterwards are still flagged — the sortedness lives outside the loop
// where the analyzer cannot see it — and carry a //mtlint:ignore with the
// justification, which is exactly the review trail ADR-007 wants.
var DetMap = &Analyzer{
	Name: "detmap",
	Doc: "report order-sensitive `range` over a map in engine code; map order " +
		"is randomized and would break byte-identical differential guarantees",
	Run: runDetMap,
}

func runDetMap(pass *Pass) error {
	// Scope: only packages that themselves declare the Operator interface.
	if namedInterface(pass.Pkg, "Operator") == nil {
		return nil
	}
	funcDecls(pass, func(fn *ast.FuncDecl) {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			t := pass.Info.Types[rng.X].Type
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); !isMap {
				return true
			}
			if sink := orderSink(pass, rng); sink != "" {
				pass.Reportf(rng.Pos(),
					"range over map leaks iteration order (%s); map order is randomized — iterate a sorted key slice or make the fold order-insensitive",
					sink)
			}
			return true
		})
	})
	return nil
}

// orderSink returns a description of the first order-sensitive sink in the
// loop body, or "" when the body is order-insensitive.
func orderSink(pass *Pass, rng *ast.RangeStmt) string {
	sink := ""
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		if sink != "" {
			return false
		}
		switch st := n.(type) {
		case *ast.SendStmt:
			sink = "channel send"
		case *ast.AssignStmt:
			for i, rhs := range st.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) {
					continue
				}
				lhs := st.Lhs[0]
				if i < len(st.Lhs) {
					lhs = st.Lhs[i]
				}
				if outerTarget(pass, rng, lhs) {
					sink = "append to outer slice"
					return false
				}
			}
			// Compound folds: x += v with float/string element types.
			if len(st.Lhs) == 1 && st.Tok != token.ASSIGN && st.Tok != token.DEFINE && outerTarget(pass, rng, st.Lhs[0]) {
				if t := pass.Info.Types[st.Lhs[0]].Type; t != nil {
					b, isBasic := t.Underlying().(*types.Basic)
					if isBasic && b.Info()&(types.IsFloat|types.IsComplex|types.IsString) != 0 {
						sink = "order-dependent fold into " + types.ExprString(st.Lhs[0])
						return false
					}
				}
			}
		case *ast.CallExpr:
			if _, name := methodCall(st); name == "Write" || name == "WriteString" || name == "WriteByte" || name == "write" {
				sink = "write to an output stream"
				return false
			}
		}
		return true
	})
	return sink
}

// isBuiltinAppend reports whether call invokes the append builtin.
func isBuiltinAppend(pass *Pass, call *ast.CallExpr) bool {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return false
	}
	_, isBuiltin := pass.Info.Uses[id].(*types.Builtin)
	return isBuiltin
}

// outerTarget reports whether the assignment target's root variable is
// declared outside the range body — mutation of it survives the loop.
func outerTarget(pass *Pass, rng *ast.RangeStmt, lhs ast.Expr) bool {
	id := rootIdent(lhs)
	if id == nil {
		return false
	}
	obj := pass.Info.Uses[id]
	if obj == nil {
		obj = pass.Info.Defs[id]
	}
	if obj == nil {
		return false
	}
	return obj.Pos() < rng.Body.Pos() || obj.Pos() > rng.Body.End()
}
