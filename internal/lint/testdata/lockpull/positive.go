// Seeded violations of the lockpull invariant: batch pulls while a mutex
// is held — the cursor-starves-writers bug class PR 5 eliminated.
package fixture

import "sync"

type Batch struct{}

type exec struct{}

type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

type Rows struct{}

func (r *Rows) Next() bool      { return false }
func (r *Rows) Collect() error  { return nil }

type DB struct {
	mu sync.Mutex
	rw sync.RWMutex
}

func pullUnderLock(db *DB, op Operator, ex *exec) {
	db.mu.Lock()
	op.Next(ex) // want "pulls a batch while db.mu is held"
	db.mu.Unlock()
}

func pullUnderDeferredUnlock(db *DB, r *Rows) {
	db.mu.Lock()
	defer db.mu.Unlock()
	r.Next() // want "pulls a batch while db.mu is held"
}

func collectUnderRLock(db *DB, r *Rows) error {
	db.rw.RLock()
	defer db.rw.RUnlock()
	return collect(r)
}

func collect(r *Rows) error { return nil }

func collectDirectlyUnderRLock(db *DB, r *Rows) error {
	db.rw.RLock()
	err := r.Collect() // want "pulls a batch while db.rw is held"
	db.rw.RUnlock()
	return err
}
