// Idiomatic patterns lockpull must stay quiet on: the lock is released
// before any pull, or guards non-pulling work only.
package fixture

func pullAfterUnlock(db *DB, op Operator, ex *exec) {
	db.mu.Lock()
	snapshot := 1
	db.mu.Unlock()
	_ = snapshot
	op.Next(ex)
}

func lockAroundOtherWork(db *DB, op Operator) {
	db.mu.Lock()
	op.Close()
	db.mu.Unlock()
}

func rlockThenPull(db *DB, r *Rows) {
	db.rw.RLock()
	db.rw.RUnlock()
	for r.Next() {
	}
}
