// Idiomatic patterns atomicstats must stay quiet on: sync/atomic access
// to the shared instance, and plain access to a by-value copy.
package fixture

import "sync/atomic"

func bumpAtomic(db *DB) {
	atomic.AddInt64(&db.Stats.Hits, 1)
}

func readAtomic(db *DB) int64 {
	return atomic.LoadInt64(&db.Stats.Misses)
}

func readCopy(db *DB) int64 {
	st := db.Stats.Snapshot()
	return st.Hits + st.Misses
}

func resetWholesale(db *DB) {
	// Whole-struct reset is the documented single-threaded test idiom;
	// only counter-field access must be atomic.
	db.Stats = Stats{}
}
