// Seeded violations of the atomicstats invariant: plain reads/writes of
// shared Stats counters that sync/atomic updates race against.
package fixture

import "sync/atomic"

type Stats struct {
	Hits   int64
	Misses int64
}

// Snapshot returns an atomically read copy, the sanctioned read path.
func (s *Stats) Snapshot() Stats {
	return Stats{
		Hits:   atomic.LoadInt64(&s.Hits),
		Misses: atomic.LoadInt64(&s.Misses),
	}
}

type DB struct {
	Stats Stats
}

func bumpPlain(db *DB) {
	db.Stats.Hits++ // want "plain access to shared Stats counter Hits"
}

func readPlain(db *DB) int64 {
	return db.Stats.Misses // want "plain access to shared Stats counter Misses"
}

func writeViaPointer(s *Stats) {
	s.Hits = 0 // want "plain access to shared Stats counter Hits"
}
