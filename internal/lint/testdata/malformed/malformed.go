// A directive without a reason is itself a finding and suppresses
// nothing; the test asserts both diagnostics directly.
package fixture

type Batch struct{}

type exec struct{}

type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

func noReason(m map[string]int64) []string {
	var out []string
	//mtlint:ignore detmap
	for k := range m {
		out = append(out, k)
	}
	return out
}
