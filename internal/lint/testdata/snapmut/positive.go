// Seeded violations of the snapmut invariant: mutating data reached
// through an atomic.Pointer snapshot Load outside the copy-on-write
// commit path.
package fixture

import "sync/atomic"

type tableData struct {
	rows    [][]int64
	version int64
}

type Table struct {
	data atomic.Pointer[tableData]
}

func mutateDirect(t *Table) {
	t.data.Load().rows[0] = nil // want "write through snapshot"
}

func mutateViaLocal(t *Table) {
	td := t.data.Load()
	td.version++ // want "increment through snapshot"
}

func mutateAliasedRows(t *Table, row []int64) {
	td := t.data.Load()
	rows := td.rows
	rows[0] = row // want "write through snapshot"
}

func appendAliased(t *Table, row []int64) [][]int64 {
	rows := append(t.data.Load().rows, row) // want "append to snapshot-loaded slice"
	return rows
}
