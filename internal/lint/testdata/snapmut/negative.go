// The copy-on-write commit idiom snapmut accepts: read the snapshot
// freely, build a fresh value, and atomically Store it.
package fixture

func commitAppend(t *Table, row []int64) {
	old := t.data.Load()
	fresh := make([][]int64, 0, len(old.rows)+1)
	fresh = append(fresh, old.rows...)
	fresh = append(fresh, row)
	t.data.Store(&tableData{rows: fresh, version: old.version + 1})
}

func cappedAppend(t *Table, row []int64) [][]int64 {
	old := t.data.Load().rows
	// The full slice expression caps capacity, forcing append to allocate
	// a fresh backing array instead of writing into the shared one.
	rows := append(old[:len(old):len(old)], row)
	return rows
}

func readOnly(t *Table) int64 {
	td := t.data.Load()
	var n int64
	for _, r := range td.rows {
		n += int64(len(r))
	}
	return n + td.version
}
