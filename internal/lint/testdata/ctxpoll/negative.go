// Idiomatic patterns ctxpoll accepts: a direct ex.cancelled() poll, a
// ctx.Err() poll, delegation to a child operator's Next, and polling via a
// same-package helper.
package fixture

type pollingOperator struct {
	rows [][]int64
	pos  int
}

func (o *pollingOperator) Open(ex *exec) error { return nil }
func (o *pollingOperator) Close()              {}

func (o *pollingOperator) Next(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if o.pos >= len(o.rows) {
		return nil, nil
	}
	b := &Batch{rows: o.rows[o.pos : o.pos+1]}
	o.pos++
	return b, nil
}

type ctxOperator struct{}

func (o *ctxOperator) Open(ex *exec) error { return nil }
func (o *ctxOperator) Close()              {}

func (o *ctxOperator) Next(ex *exec) (*Batch, error) {
	if ex.ctx != nil {
		if err := ex.ctx.Err(); err != nil {
			return nil, err
		}
	}
	return nil, nil
}

type delegatingOperator struct {
	child Operator
}

func (o *delegatingOperator) Open(ex *exec) error { return o.child.Open(ex) }
func (o *delegatingOperator) Close()              { o.child.Close() }

func (o *delegatingOperator) Next(ex *exec) (*Batch, error) {
	return o.child.Next(ex)
}

// gatherOperator is the scatter/gather idiom from the shard router: Next
// receives batches that feeder goroutines push onto a channel, and the
// receive races ctx.Done() so a cancelled statement stops the gather even
// when every feeder has stalled.
type gatherOperator struct {
	results chan *Batch
}

func (o *gatherOperator) Open(ex *exec) error { return nil }
func (o *gatherOperator) Close()              {}

func (o *gatherOperator) Next(ex *exec) (*Batch, error) {
	select {
	case b, ok := <-o.results:
		if !ok {
			return nil, nil
		}
		return b, nil
	case <-ex.ctx.Done():
		return nil, ex.ctx.Err()
	}
}

type helperOperator struct {
	done bool
}

func (o *helperOperator) Open(ex *exec) error { return nil }
func (o *helperOperator) Close()              {}

func (o *helperOperator) Next(ex *exec) (*Batch, error) {
	return o.emit(ex)
}

// emit polls, so Next polls through it.
func (o *helperOperator) emit(ex *exec) (*Batch, error) {
	if err := ex.cancelled(); err != nil {
		return nil, err
	}
	if o.done {
		return nil, nil
	}
	o.done = true
	return &Batch{}, nil
}
