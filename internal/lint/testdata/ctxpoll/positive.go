// Seeded violation of the ctxpoll invariant: an Operator.Next whose
// row loop never checks for cancellation.
package fixture

import "context"

type Batch struct {
	rows [][]int64
}

type exec struct {
	ctx context.Context
}

func (ex *exec) cancelled() error {
	if ex.ctx == nil {
		return nil
	}
	return ex.ctx.Err()
}

type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

type spinOperator struct {
	rows [][]int64
	pos  int
}

func (o *spinOperator) Open(ex *exec) error { return nil }
func (o *spinOperator) Close()              {}

func (o *spinOperator) Next(ex *exec) (*Batch, error) { // want "no cancellation check"
	b := &Batch{}
	for o.pos < len(o.rows) {
		b.rows = append(b.rows, o.rows[o.pos])
		o.pos++
	}
	return b, nil
}

// blindGatherOperator drains a feeder channel with a bare receive: if the
// feeders stall (or never close the channel after an error), a cancelled
// statement blocks forever — the gather must race ctx.Done().
type blindGatherOperator struct {
	results chan *Batch
}

func (o *blindGatherOperator) Open(ex *exec) error { return nil }
func (o *blindGatherOperator) Close()              {}

func (o *blindGatherOperator) Next(ex *exec) (*Batch, error) { // want "no cancellation check"
	b, ok := <-o.results
	if !ok {
		return nil, nil
	}
	return b, nil
}
