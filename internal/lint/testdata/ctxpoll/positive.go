// Seeded violation of the ctxpoll invariant: an Operator.Next whose
// row loop never checks for cancellation.
package fixture

import "context"

type Batch struct {
	rows [][]int64
}

type exec struct {
	ctx context.Context
}

func (ex *exec) cancelled() error {
	if ex.ctx == nil {
		return nil
	}
	return ex.ctx.Err()
}

type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

type spinOperator struct {
	rows [][]int64
	pos  int
}

func (o *spinOperator) Open(ex *exec) error { return nil }
func (o *spinOperator) Close()              {}

func (o *spinOperator) Next(ex *exec) (*Batch, error) { // want "no cancellation check"
	b := &Batch{}
	for o.pos < len(o.rows) {
		b.rows = append(b.rows, o.rows[o.pos])
		o.pos++
	}
	return b, nil
}
