// Seeded violations of the detmap invariant: map iteration order reaching
// an output path — the silent killer of byte-identical differential runs.
package fixture

type Batch struct {
	rows [][]int64
}

type exec struct{}

type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

func emitKeys(m map[string]int64) []string {
	var out []string
	for k := range m { // want "leaks iteration order"
		out = append(out, k)
	}
	return out
}

func sumFloats(m map[string]float64) float64 {
	var sum float64
	for _, v := range m { // want "leaks iteration order"
		sum += v
	}
	return sum
}

func concatNames(m map[string]int64) string {
	s := ""
	for k := range m { // want "leaks iteration order"
		s += k
	}
	return s
}
