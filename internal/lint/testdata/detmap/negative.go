// Order-insensitive map loops detmap accepts: pure deletion, integer
// counting and integer folds, and populating another map.
package fixture

func removeAll(files map[string]struct{}) {
	for f := range files {
		delete(files, f)
	}
}

func countRows(m map[string][][]int64) int {
	n := 0
	for range m {
		n++
	}
	return n
}

func sumInts(m map[string]int64) int64 {
	var total int64
	for _, v := range m {
		total += v
	}
	return total
}

func invert(m map[string]int64) map[int64]string {
	out := make(map[int64]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}
