// Exercises the //mtlint:ignore escape hatch: a directive suppresses
// findings of exactly the named analyzer on its own line and the line
// below — and nothing else.
package fixture

type Batch struct{}

type exec struct{}

type Operator interface {
	Open(ex *exec) error
	Next(ex *exec) (*Batch, error)
	Close()
}

func suppressedAbove(m map[string]int64) []string {
	var out []string
	//mtlint:ignore detmap fixture: the caller sorts the result before use
	for k := range m {
		out = append(out, k)
	}
	return out
}

func suppressedSameLine(m map[string]int64) []string {
	var out []string
	for k := range m { //mtlint:ignore detmap fixture: the caller sorts the result before use
		out = append(out, k)
	}
	return out
}

func wrongAnalyzerName(m map[string]int64) []string {
	var out []string
	//mtlint:ignore atomicstats naming a different analyzer must not suppress detmap
	for k := range m { // want "leaks iteration order"
		out = append(out, k)
	}
	return out
}

func unannotated(m map[string]int64) []string {
	var out []string
	for k := range m { // want "leaks iteration order"
		out = append(out, k)
	}
	return out
}
