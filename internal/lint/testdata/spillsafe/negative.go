// The idiomatic spill seam: os.CreateTemp lives inside the one spillFS
// implementation, files are created through the registering constructor
// (*exec).newSpillFile, and acquired files are stored or dropped.
package fixture

import (
	"io"
	"os"
)

type spillFile interface {
	io.Writer
	finish() error
	open() (io.ReadCloser, error)
	remove() error
}

type spillFS interface {
	create(dir string) (spillFile, error)
}

type osFS struct{}

type osFile struct {
	f    *os.File
	path string
}

func (osFS) create(dir string) (spillFile, error) {
	f, err := os.CreateTemp(dir, "fixture-spill-*")
	if err != nil {
		return nil, err
	}
	return &osFile{f: f, path: f.Name()}, nil
}

func (s *osFile) Write(p []byte) (int, error)  { return s.f.Write(p) }
func (s *osFile) finish() error                { return s.f.Close() }
func (s *osFile) open() (io.ReadCloser, error) { return os.Open(s.path) }
func (s *osFile) remove() error                { return os.Remove(s.path) }

type registry struct {
	files map[spillFile]struct{}
}

func (r *registry) register(f spillFile) {
	if r.files == nil {
		r.files = make(map[spillFile]struct{})
	}
	r.files[f] = struct{}{}
}

type exec struct {
	fs     spillFS
	spills *registry
}

func (ex *exec) newSpillFile() (spillFile, error) {
	f, err := ex.fs.create("")
	if err != nil {
		return nil, err
	}
	ex.spills.register(f)
	return f, nil
}

func (ex *exec) dropSpillFile(f spillFile) {
	f.remove()
	delete(ex.spills.files, f)
}

func acquireAndDrop(ex *exec) error {
	f, err := ex.newSpillFile()
	if err != nil {
		return err
	}
	defer ex.dropSpillFile(f)
	_, err = f.Write([]byte("run"))
	return err
}

type holder struct {
	runs []spillFile
}

func acquireAndStore(ex *exec, h *holder) error {
	f, err := ex.newSpillFile()
	if err != nil {
		return err
	}
	h.runs = append(h.runs, f)
	return nil
}

func acquireAndReturn(ex *exec) (spillFile, error) {
	return ex.newSpillFile()
}
