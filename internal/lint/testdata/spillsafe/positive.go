// Seeded violations of the spillsafe invariant: temp files created outside
// the registered seam, and acquired spill files that leak.
package fixture

import "os"

func rawTemp(dir string) error {
	f, err := os.CreateTemp(dir, "x-*") // want "os.CreateTemp outside a spillFS implementation"
	if err != nil {
		return err
	}
	return f.Close()
}

func sneakyCreate(ex *exec) (spillFile, error) {
	return ex.fs.create("") // want "spillFS.create called outside"
}

func leakAcquired(ex *exec) error {
	f, err := ex.newSpillFile() // want "never stored, returned, passed on or dropped"
	if err != nil {
		return err
	}
	f.Write([]byte("run"))
	return nil
}

func leakSilenced(ex *exec) error {
	f, err := ex.newSpillFile() // want "never stored, returned, passed on or dropped"
	if err != nil {
		return err
	}
	_ = f // blank assignment is not ownership
	return nil
}
