package lint

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, parsed and type-checked target package.
type Package struct {
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// listPkg is the subset of `go list -json` output the loader consumes.
type listPkg struct {
	ImportPath string
	Dir        string
	Export     string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
	Incomplete bool
	Error      *struct{ Err string }
}

// Load resolves patterns (e.g. "./...") relative to dir, compiles their
// dependency graph with `go list -export`, and parses + type-checks every
// matched (non-test, non-dependency) package from source. Dependencies are
// imported from the compiler's export data, so loading is cheap and needs
// no network: the go toolchain and the local source tree are the only
// inputs.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Dir,Export,GoFiles,Standard,DepOnly,Incomplete,Error",
		"--",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("lint: go list: %v\n%s", err, stderr.String())
	}

	exports := make(map[string]string) // import path -> export data file
	var targets []*listPkg
	dec := json.NewDecoder(&stdout)
	for {
		var p listPkg
		if err := dec.Decode(&p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %v", err)
		}
		if p.Error != nil {
			return nil, fmt.Errorf("lint: %s: %s", p.ImportPath, p.Error.Err)
		}
		if p.Export != "" {
			exports[p.ImportPath] = p.Export
		}
		if !p.DepOnly && !p.Standard {
			cp := p
			targets = append(targets, &cp)
		}
	}
	sort.Slice(targets, func(i, j int) bool { return targets[i].ImportPath < targets[j].ImportPath })

	fset := token.NewFileSet()
	imp := exportImporter(fset, exports)
	var pkgs []*Package
	for _, t := range targets {
		pkg, err := checkPackage(fset, imp, t.ImportPath, t.Dir, t.GoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

// exportImporter returns a go/types importer that resolves every import
// from the export data files `go list -export` produced. One importer is
// shared across all target packages so common dependencies unify.
func exportImporter(fset *token.FileSet, exports map[string]string) types.Importer {
	return importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		f, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("lint: no export data for %q", path)
		}
		return os.Open(f)
	})
}

// checkPackage parses files (with comments — the ignore directives live
// there) and type-checks them against the shared importer.
func checkPackage(fset *token.FileSet, imp types.Importer, path, dir string, goFiles []string) (*Package, error) {
	var files []*ast.File
	for _, name := range goFiles {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %v", err)
		}
		files = append(files, f)
	}
	info := newTypesInfo()
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %v", path, err)
	}
	return &Package{Path: path, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}

func newTypesInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// loadFixture parses and type-checks a single directory of Go files as one
// package, importing only standard-library packages (served from export
// data built on demand). The analysistest harness uses it to load
// testdata fixtures, which the go tool itself refuses to enumerate.
func loadFixture(dir string, stdExports map[string]string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var goFiles []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			goFiles = append(goFiles, e.Name())
		}
	}
	sort.Strings(goFiles)
	if len(goFiles) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	fset := token.NewFileSet()
	imp := exportImporter(fset, stdExports)
	return checkPackage(fset, imp, "fixture/"+filepath.Base(dir), dir, goFiles)
}
