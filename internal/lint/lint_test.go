package lint

// Fixture coverage for every analyzer — one positive arm (the seeded
// violation of the real bug class is caught) and one negative arm (the
// idiomatic engine pattern passes) — plus the escape-hatch contract and
// the tree-clean gate mtlint enforces in CI.

import (
	"io"
	"strings"
	"testing"
)

func TestLockPull(t *testing.T) {
	diags := runFixture(t, "lockpull", LockPull)
	mustFindings(t, diags, 3)
}

func TestAtomicStats(t *testing.T) {
	diags := runFixture(t, "atomicstats", AtomicStats)
	mustFindings(t, diags, 3)
}

func TestSpillSafe(t *testing.T) {
	diags := runFixture(t, "spillsafe", SpillSafe)
	mustFindings(t, diags, 4)
}

func TestCtxPoll(t *testing.T) {
	diags := runFixture(t, "ctxpoll", CtxPoll)
	mustFindings(t, diags, 1)
}

func TestDetMap(t *testing.T) {
	diags := runFixture(t, "detmap", DetMap)
	mustFindings(t, diags, 3)
}

func TestSnapMut(t *testing.T) {
	diags := runFixture(t, "snapmut", SnapMut)
	mustFindings(t, diags, 4)
}

// TestIgnoreSuppressesExactlyNamedAnalyzer proves the escape hatch:
// annotated lines are silent, a directive naming a different analyzer
// suppresses nothing, and unannotated violations still fire. The fixture
// wants encode all three.
func TestIgnoreSuppressesExactlyNamedAnalyzer(t *testing.T) {
	diags := runFixture(t, "ignore", DetMap, AtomicStats)
	// Exactly the two unsuppressed detmap findings must survive.
	mustFindings(t, diags, 2)
	for _, d := range diags {
		if d.Analyzer != "detmap" {
			t.Errorf("unexpected analyzer %q in ignore fixture findings", d.Analyzer)
		}
	}
}

// TestMalformedDirective: a reason-less directive is itself reported and
// suppresses nothing.
func TestMalformedDirective(t *testing.T) {
	pkg, err := loadFixture("testdata/malformed", stdExports(t))
	if err != nil {
		t.Fatal(err)
	}
	diags, err := runPackage(pkg, []*Analyzer{DetMap})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawDetmap bool
	for _, d := range diags {
		switch {
		case d.Analyzer == "mtlint" && strings.Contains(d.Message, "malformed ignore directive"):
			sawMalformed = true
		case d.Analyzer == "detmap":
			sawDetmap = true
		}
	}
	if !sawMalformed {
		t.Errorf("missing malformed-directive finding; got %v", diags)
	}
	if !sawDetmap {
		t.Errorf("reason-less directive must not suppress the finding; got %v", diags)
	}
}

// TestTreeClean is the merge gate in test form: the whole module must be
// mtlint-clean — every remaining finding is either fixed or carries an
// explained //mtlint:ignore.
func TestTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	n, err := Run(io.Discard, "../..", Analyzers(), "./...")
	if err != nil {
		t.Fatal(err)
	}
	if n != 0 {
		t.Fatalf("mtlint found %d unexplained finding(s); run `go run ./cmd/mtlint ./...` and fix or annotate them", n)
	}
}

// TestAnalyzerNamesStable guards the names the ignore directives and CI
// documentation depend on.
func TestAnalyzerNamesStable(t *testing.T) {
	want := []string{"lockpull", "atomicstats", "spillsafe", "ctxpoll", "detmap", "snapmut"}
	got := Analyzers()
	if len(got) != len(want) {
		t.Fatalf("expected %d analyzers, got %d", len(want), len(got))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d: name %q, want %q", i, a.Name, want[i])
		}
		if a.Doc == "" {
			t.Errorf("analyzer %s has no Doc", a.Name)
		}
	}
}
