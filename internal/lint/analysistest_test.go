package lint

// A minimal analysistest in the style of
// golang.org/x/tools/go/analysis/analysistest: fixtures under testdata/
// are self-contained packages annotated with `// want "regexp"` comments;
// runFixture loads one, runs the analyzer(s) through the same
// ignore-filtering path the real driver uses, and diffs reported
// diagnostics against the annotations line by line. Fixture imports are
// limited to the standard library, served from export data `go list
// -export` builds on demand (no network).

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os/exec"
	"regexp"
	"sync"
	"testing"
)

var (
	stdOnce sync.Once
	stdExp  map[string]string
	stdErr  error
)

// stdExports builds (once) export data for the std packages fixtures may
// import, plus their transitive dependencies.
func stdExports(t *testing.T) map[string]string {
	t.Helper()
	stdOnce.Do(func() {
		cmd := exec.Command("go", "list", "-export", "-deps",
			"-json=ImportPath,Export",
			"sync", "sync/atomic", "os", "context", "io", "fmt", "errors", "sort", "strings")
		var out bytes.Buffer
		cmd.Stdout = &out
		var errb bytes.Buffer
		cmd.Stderr = &errb
		if err := cmd.Run(); err != nil {
			stdErr = fmt.Errorf("go list std exports: %v\n%s", err, errb.String())
			return
		}
		stdExp = make(map[string]string)
		dec := json.NewDecoder(&out)
		for {
			var p struct{ ImportPath, Export string }
			if err := dec.Decode(&p); err == io.EOF {
				break
			} else if err != nil {
				stdErr = err
				return
			}
			if p.Export != "" {
				stdExp[p.ImportPath] = p.Export
			}
		}
	})
	if stdErr != nil {
		t.Fatal(stdErr)
	}
	return stdExp
}

var wantRE = regexp.MustCompile(`// want (".*")\s*$`)
var wantArgRE = regexp.MustCompile(`"((?:[^"\\]|\\.)*)"`)

// runFixture loads testdata/<name>, runs the analyzers (with ignore
// filtering, so directives behave exactly as under the real driver) and
// compares findings against // want annotations.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	pkg, err := loadFixture("testdata/"+name, stdExports(t))
	if err != nil {
		t.Fatalf("loading fixture %s: %v", name, err)
	}
	diags, err := runPackage(pkg, analyzers)
	if err != nil {
		t.Fatalf("running analyzers on %s: %v", name, err)
	}

	// Collect wants: file:line -> regexps.
	type key struct {
		file string
		line int
	}
	wants := make(map[key][]*regexp.Regexp)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRE.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				for _, arg := range wantArgRE.FindAllStringSubmatch(m[1], -1) {
					re, err := regexp.Compile(arg[1])
					if err != nil {
						t.Fatalf("%s: bad want regexp %q: %v", pos, arg[1], err)
					}
					wants[key{pos.Filename, pos.Line}] = append(wants[key{pos.Filename, pos.Line}], re)
				}
			}
		}
	}

	// Match diagnostics against wants.
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		k := key{pos.Filename, pos.Line}
		matched := false
		for i, re := range wants[k] {
			if re.MatchString(d.Message) {
				wants[k] = append(wants[k][:i], wants[k][i+1:]...)
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding [%s] %s", pos, d.Analyzer, d.Message)
		}
	}
	for k, res := range wants {
		for _, re := range res {
			t.Errorf("%s:%d: expected finding matching %q, got none", k.file, k.line, re)
		}
	}
	return diags
}

// mustFindings asserts at least n findings were reported — the
// seeded-violation guarantee: an analyzer that goes blind fails its
// fixture rather than passing it vacuously.
func mustFindings(t *testing.T, diags []Diagnostic, n int) {
	t.Helper()
	if len(diags) < n {
		t.Fatalf("expected at least %d seeded findings, got %d", n, len(diags))
	}
}
