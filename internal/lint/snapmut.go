package lint

import (
	"go/ast"
	"go/types"
)

// SnapMut enforces ADR-005's copy-on-write discipline: data reached
// through an atomic.Pointer snapshot Load — a pinned tableData heap, the
// catalog — is immutable. Writers build a fresh value and Store it; they
// never mutate the loaded one, because open cursors and parallel workers
// are reading it concurrently with no lock. Within each function the
// analyzer taints chains rooted at a sync/atomic Pointer .Load() call
// (including locals assigned from one) and reports:
//
//   - writes through a tainted chain (x.f = v, x.f[i] = v, x.f++), and
//   - append with a tainted base and spare-capacity potential — append to
//     a loaded slice can write into the shared backing array; a full
//     slice expression x[:n:n] caps capacity and passes.
//
// Taint follows selector/index chains, not arbitrary mentions: building a
// fresh value FROM snapshot data (make(..., len(old.rows)), append(fresh,
// old.rows...), copy(dst, old.rows)) reads the snapshot and stays clean.
var SnapMut = &Analyzer{
	Name: "snapmut",
	Doc: "report mutation of data reached through an atomic.Pointer snapshot " +
		"Load(); snapshots are copy-on-write — build a fresh value and Store it",
	Run: runSnapMut,
}

func runSnapMut(pass *Pass) error {
	funcDecls(pass, func(fn *ast.FuncDecl) {
		checkSnapMut(pass, fn)
	})
	return nil
}

func checkSnapMut(pass *Pass, fn *ast.FuncDecl) {
	// tainted holds locals (transitively) bound to a snapshot Load result.
	tainted := map[types.Object]bool{}

	// chainTainted walks the selector/index/deref spine of e. The chain is
	// tainted when its root is a .Load() call on an atomic.Pointer or an
	// identifier already tainted. Any other call in the spine (Snapshot(),
	// a constructor) produces a fresh value and cuts the chain.
	var chainTainted func(e ast.Expr) bool
	chainTainted = func(e ast.Expr) bool {
		for {
			switch x := ast.Unparen(e).(type) {
			case *ast.Ident:
				obj := pass.Info.Uses[x]
				return obj != nil && tainted[obj]
			case *ast.SelectorExpr:
				e = x.X
			case *ast.IndexExpr:
				e = x.X
			case *ast.StarExpr:
				e = x.X
			case *ast.SliceExpr:
				e = x.X
			case *ast.CallExpr:
				if recv, name := methodCall(x); name == "Load" && recv != nil &&
					isPkgType(pass.Info.Types[recv].Type, "sync/atomic", "Pointer") {
					return true
				}
				return false
			default:
				return false
			}
		}
	}

	// taintedAppend reports an append whose base may share the snapshot's
	// backing array: tainted base without a capacity-capping full slice
	// expression.
	checkAppend := func(rhs ast.Expr) {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || !isBuiltinAppend(pass, call) || len(call.Args) == 0 {
			return
		}
		base := ast.Unparen(call.Args[0])
		if sl, ok := base.(*ast.SliceExpr); ok && sl.Max != nil {
			return
		}
		if chainTainted(base) {
			pass.Reportf(call.Pos(),
				"append to snapshot-loaded slice %s may write into the shared backing array; copy first or cap with a full slice expression x[:n:n]",
				types.ExprString(call.Args[0]))
		}
	}

	// rhsTaints decides whether assigning rhs taints the target: a tainted
	// chain does; an append keeps the base's taint; anything else (make,
	// composite literals, other calls) produces a fresh value.
	var rhsTaints func(rhs ast.Expr) bool
	rhsTaints = func(rhs ast.Expr) bool {
		if call, ok := ast.Unparen(rhs).(*ast.CallExpr); ok && isBuiltinAppend(pass, call) && len(call.Args) > 0 {
			base := ast.Unparen(call.Args[0])
			if sl, ok := base.(*ast.SliceExpr); ok && sl.Max != nil {
				return false
			}
			return rhsTaints(base)
		}
		return chainTainted(rhs)
	}

	// One forward sweep in source order is enough for the engine's
	// straight-line idiom (load, then use); taint propagates through
	// `td := t.data.Load()` and `rows := td.rows`.
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			// Writes through tainted chains. Rebinding a plain identifier
			// is not a mutation; writing through a selector or index is.
			for _, lhs := range st.Lhs {
				if _, isIdent := ast.Unparen(lhs).(*ast.Ident); isIdent {
					continue
				}
				if chainTainted(lhs) {
					pass.Reportf(lhs.Pos(),
						"write through snapshot %s mutates data other readers share; copy-on-write: build a fresh value and atomically Store it",
						types.ExprString(lhs))
				}
			}
			for i, rhs := range st.Rhs {
				checkAppend(rhs)
				if !rhsTaints(rhs) {
					continue
				}
				if i < len(st.Lhs) {
					if id, ok := ast.Unparen(st.Lhs[i]).(*ast.Ident); ok {
						if obj := pass.Info.Defs[id]; obj != nil {
							tainted[obj] = true
						} else if obj := pass.Info.Uses[id]; obj != nil {
							tainted[obj] = true
						}
					}
				}
			}
		case *ast.IncDecStmt:
			if _, isIdent := ast.Unparen(st.X).(*ast.Ident); !isIdent && chainTainted(st.X) {
				pass.Reportf(st.X.Pos(),
					"increment through snapshot %s mutates data other readers share; copy-on-write: build a fresh value and atomically Store it",
					types.ExprString(st.X))
			}
		}
		return true
	})
}
