package lint

import (
	"go/ast"
	"go/types"
)

// AtomicStats flags non-atomic reads and writes of shared Stats counter
// fields. The counters stay plain int64s (so tests can reset the struct
// wholesale) but every access to a *shared* instance — through a *Stats
// receiver or a field chain rooted at the DB — must go through sync/atomic:
// parallel workers and concurrent statements update them concurrently, and
// a mixed plain/atomic access pair is a data race (the bug class PR 6
// closed when the counters went atomic). Reads of a by-value Stats copy
// (what Snapshot returns) are fine and stay unflagged.
var AtomicStats = &Analyzer{
	Name: "atomicstats",
	Doc: "report plain (non-sync/atomic) access to shared Stats counter fields; " +
		"read counters via Stats.Snapshot() or atomic.LoadInt64",
	Run: runAtomicStats,
}

func runAtomicStats(pass *Pass) error {
	scope := scopeFor(pass)
	if scope.stats == nil {
		return nil
	}

	// Pass 1: collect the selector nodes sanctioned by appearing as &arg
	// to a sync/atomic call — atomic.AddInt64(&db.Stats.X, n) blesses
	// db.Stats.X and every selector on its spine.
	sanctioned := map[ast.Node]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			obj := calleeIn(pass, call)
			if obj == nil || obj.Pkg() == nil || obj.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if u, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok {
					ast.Inspect(u, func(m ast.Node) bool {
						if sel, ok := m.(*ast.SelectorExpr); ok {
							sanctioned[sel] = true
						}
						return true
					})
				}
			}
			return true
		})
	}

	// Pass 2: every unsanctioned Stats-field selector on a shared
	// instance is a finding.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok || sanctioned[sel] {
				return true
			}
			if !scope.isStatsField(pass, sel) {
				return true
			}
			if !sharedStatsBase(pass, sel.X) {
				return true
			}
			pass.Reportf(sel.Pos(),
				"plain access to shared Stats counter %s; use atomic.LoadInt64/AddInt64 or a Snapshot() copy",
				sel.Sel.Name)
			return true
		})
	}
	return nil
}

// sharedStatsBase reports whether the expression the counter is selected
// from denotes a shared Stats instance rather than a private by-value
// copy. A plain identifier bound to a value-typed Stats variable or
// parameter is a copy; anything else — a *Stats, a deref, or a field
// chain like db.Stats reaching the DB-owned instance — is shared.
func sharedStatsBase(pass *Pass, base ast.Expr) bool {
	base = ast.Unparen(base)
	if id, ok := base.(*ast.Ident); ok {
		obj := pass.Info.Uses[id]
		if obj == nil {
			return true
		}
		if v, ok := obj.(*types.Var); ok {
			if _, isPtr := v.Type().(*types.Pointer); !isPtr {
				return false // local/param Stats value: a copy
			}
		}
	}
	return true
}
