package lint

import (
	"go/ast"
)

// CtxPoll verifies that every Operator.Next implementation polls for
// cancellation. A Next that loops over rows or batches without checking
// the statement context turns ExecContext/QueryContext cancellation into a
// dead letter: the pull-based tree only stops when some operator notices.
// A Next satisfies the check if it (directly, or via a same-package helper
// it calls) touches the cancellation machinery — ex.cancelled(),
// ctx.Err(), ctx.Done() — or if it delegates by pulling another Operator's
// Next (the child polls; indexScan wrapping scan, limit draining its
// input).
var CtxPoll = &Analyzer{
	Name: "ctxpoll",
	Doc: "report Operator.Next implementations with no reachable cancellation " +
		"check (ex.cancelled / ctx.Err / ctx.Done or delegation to a child Next)",
	Run: runCtxPoll,
}

func runCtxPoll(pass *Pass) error {
	scope := scopeFor(pass)
	if scope.operator == nil {
		return nil
	}

	// Same-package functions/methods whose bodies poll directly, keyed by
	// declaration name (receiver-qualified methods collapse to the method
	// name — one level of call indirection is enough for the engine's
	// helper idiom, e.g. joinOperator.Next -> graceNext).
	polling := map[string]bool{}
	funcDecls(pass, func(fn *ast.FuncDecl) {
		if bodyPollsDirectly(pass, fn.Body) {
			polling[fn.Name.Name] = true
		}
	})

	funcDecls(pass, func(fn *ast.FuncDecl) {
		if fn.Name.Name != "Next" {
			return
		}
		rt := recvType(pass, fn)
		if rt == nil || !scope.implementsOperator(rt) {
			return
		}
		if bodyPollsDirectly(pass, fn.Body) {
			return
		}
		ok := false
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			if ok {
				return false
			}
			call, isCall := n.(*ast.CallExpr)
			if !isCall {
				return true
			}
			recv, name := methodCall(call)
			// Delegation: pulling a child operator's Next polls through it.
			if name == "Next" && recv != nil && scope.implementsOperator(pass.Info.Types[recv].Type) {
				ok = true
				return false
			}
			// A same-package helper that polls (graceNext, emit loops).
			if name != "" && polling[name] {
				ok = true
				return false
			}
			if id, isIdent := ast.Unparen(call.Fun).(*ast.Ident); isIdent && polling[id.Name] {
				ok = true
				return false
			}
			return true
		})
		if !ok {
			pass.Reportf(fn.Name.Pos(),
				"%s.Next has no cancellation check; poll ex.cancelled() (or delegate to a child Next) so ExecContext/QueryContext can stop the pull",
				recvTypeName(fn))
		}
	})
	return nil
}

// bodyPollsDirectly reports whether the body itself calls the
// cancellation machinery.
func bodyPollsDirectly(pass *Pass, body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if _, name := methodCall(call); name == "cancelled" || name == "Err" || name == "Done" {
			// Err/Done count only on a context.Context receiver.
			if name == "cancelled" {
				found = true
				return false
			}
			if recv, _ := methodCall(call); recv != nil {
				if t := pass.Info.Types[recv].Type; isPkgType(t, "context", "Context") || isContextInterface(t) {
					found = true
					return false
				}
			}
		}
		return true
	})
	return found
}

// isContextInterface matches the context.Context interface type itself
// (fields/params typed context.Context resolve to the named interface, so
// isPkgType covers them; this keeps the check honest if an alias slips in).
func isContextInterface(t interface{ String() string }) bool {
	return t != nil && t.String() == "context.Context"
}

// recvTypeName returns the receiver's type name for messages ("*scanOperator").
func recvTypeName(fn *ast.FuncDecl) string {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return fn.Name.Name
	}
	t := fn.Recv.List[0].Type
	if s, ok := t.(*ast.StarExpr); ok {
		if id, ok := s.X.(*ast.Ident); ok {
			return "*" + id.Name
		}
	}
	if id, ok := t.(*ast.Ident); ok {
		return id.Name
	}
	return fn.Name.Name
}
