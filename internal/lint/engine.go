package lint

import (
	"go/ast"
	"go/types"
)

// The analyzers key off a handful of marker types — the Operator
// interface, the Stats counter struct, the Rows cursor, the spillFS /
// spillFile seam, the per-statement exec. engineScope resolves them for
// the package under analysis: from the package's own declarations when it
// defines them (the engine itself, and the self-contained analysistest
// fixtures, which declare stand-ins), otherwise from a directly imported
// package named "engine" (clients like internal/bench and cmd/mtbench).
type engineScope struct {
	operator  *types.Interface // Operator: Open/Next/Close
	stats     *types.Named     // Stats counter struct
	rows      *types.Named     // Rows cursor
	spillFS   *types.Interface // spill-file factory seam
	spillFile *types.Interface // one spill temp file
}

// scopeFor resolves the marker types visible from pass.Pkg. Fields are nil
// when the corresponding type is not in scope — each analyzer checks what
// it needs and stays silent otherwise.
func scopeFor(pass *Pass) *engineScope {
	pkgs := []*types.Package{pass.Pkg}
	for _, imp := range pass.Pkg.Imports() {
		if imp.Name() == "engine" {
			pkgs = append(pkgs, imp)
		}
	}
	s := &engineScope{}
	for _, pkg := range pkgs {
		if s.operator == nil {
			s.operator = namedInterface(pkg, "Operator")
		}
		if s.stats == nil {
			s.stats = namedType(pkg, "Stats")
		}
		if s.rows == nil {
			s.rows = namedType(pkg, "Rows")
		}
		if s.spillFS == nil {
			s.spillFS = namedInterface(pkg, "spillFS")
		}
		if s.spillFile == nil {
			s.spillFile = namedInterface(pkg, "spillFile")
		}
	}
	return s
}

func namedType(pkg *types.Package, name string) *types.Named {
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		return nil
	}
	n, _ := obj.Type().(*types.Named)
	return n
}

func namedInterface(pkg *types.Package, name string) *types.Interface {
	n := namedType(pkg, name)
	if n == nil {
		return nil
	}
	iface, _ := n.Underlying().(*types.Interface)
	return iface
}

// implementsOperator reports whether t (or *t) satisfies the Operator
// interface.
func (s *engineScope) implementsOperator(t types.Type) bool {
	if s.operator == nil || t == nil {
		return false
	}
	if types.Implements(t, s.operator) {
		return true
	}
	if _, ok := t.(*types.Pointer); !ok {
		return types.Implements(types.NewPointer(t), s.operator)
	}
	return false
}

// isRows reports whether t is the Rows cursor (possibly behind a pointer).
func (s *engineScope) isRows(t types.Type) bool {
	if s.rows == nil || t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	return ok && n.Obj() == s.rows.Obj()
}

// isStatsField reports whether sel selects a field declared on the Stats
// struct.
func (s *engineScope) isStatsField(pass *Pass, sel *ast.SelectorExpr) bool {
	if s.stats == nil {
		return false
	}
	selection, ok := pass.Info.Selections[sel]
	if !ok || selection.Kind() != types.FieldVal {
		return false
	}
	recv := selection.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	n, ok := recv.(*types.Named)
	return ok && n.Obj() == s.stats.Obj()
}

// --------------------------------------------------------------- generic
// type/AST helpers shared by the analyzers.

// isPkgType reports whether t is (possibly behind a pointer) a named type
// declared in package pkgPath with the given name. Generic instantiations
// match on the origin type, so atomic.Pointer[tableData] matches
// ("sync/atomic", "Pointer").
func isPkgType(t types.Type, pkgPath, name string) bool {
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Origin().Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// isMutex reports whether t is sync.Mutex or sync.RWMutex.
func isMutex(t types.Type) bool {
	return isPkgType(t, "sync", "Mutex") || isPkgType(t, "sync", "RWMutex")
}

// calleeIn returns, for a call expression of the form x.M(...) or M(...),
// the used object — the method or function being called — or nil.
func calleeIn(pass *Pass, call *ast.CallExpr) types.Object {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		return pass.Info.Uses[fun.Sel]
	case *ast.Ident:
		return pass.Info.Uses[fun]
	}
	return nil
}

// methodCall destructures call into (receiver expr, method name) when it
// is a method call through a selector, else ("", nil).
func methodCall(call *ast.CallExpr) (ast.Expr, string) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil, ""
	}
	return sel.X, sel.Sel.Name
}

// recvType returns the declared receiver type of a function declaration,
// or nil for plain functions.
func recvType(pass *Pass, fn *ast.FuncDecl) types.Type {
	if fn.Recv == nil || len(fn.Recv.List) == 0 {
		return nil
	}
	return pass.Info.Types[fn.Recv.List[0].Type].Type
}

// funcDecls yields every function declaration with a body in the package.
func funcDecls(pass *Pass, visit func(*ast.FuncDecl)) {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			if fn, ok := decl.(*ast.FuncDecl); ok && fn.Body != nil {
				visit(fn)
			}
		}
	}
}

// rootIdent returns the leftmost identifier of a selector/index/deref
// chain (db.Stats.X -> db; (*p).f[i] -> p), or nil.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
