package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// The escape hatch: a comment of the form
//
//	//mtlint:ignore <analyzer> <reason>
//
// on the flagged line, or on its own line immediately above, suppresses
// findings of exactly that analyzer on that line. The reason is mandatory —
// a directive without one is itself reported — so every suppression in the
// tree documents why the invariant does not apply.

const ignorePrefix = "//mtlint:ignore"

// ignoreDirective is one parsed //mtlint:ignore comment.
type ignoreDirective struct {
	pos      token.Pos
	analyzer string
	reason   string
}

// ignoreIndex maps file name -> line -> directives governing that line.
// A directive on line N governs lines N and N+1 (itself and the statement
// below it, the two idiomatic placements).
type ignoreIndex map[string]map[int][]ignoreDirective

// buildIgnoreIndex scans every comment in files. Malformed directives
// (missing analyzer or reason) are returned separately so the checker can
// report them instead of silently not suppressing.
func buildIgnoreIndex(fset *token.FileSet, files []*ast.File) (ignoreIndex, []Diagnostic) {
	idx := make(ignoreIndex)
	var malformed []Diagnostic
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimPrefix(c.Text, ignorePrefix)
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					malformed = append(malformed, Diagnostic{
						Pos:      c.Pos(),
						Analyzer: "mtlint",
						Message:  "malformed ignore directive: want //mtlint:ignore <analyzer> <reason>",
					})
					continue
				}
				d := ignoreDirective{
					pos:      c.Pos(),
					analyzer: fields[0],
					reason:   strings.Join(fields[1:], " "),
				}
				p := fset.Position(c.Pos())
				if idx[p.Filename] == nil {
					idx[p.Filename] = make(map[int][]ignoreDirective)
				}
				idx[p.Filename][p.Line] = append(idx[p.Filename][p.Line], d)
				idx[p.Filename][p.Line+1] = append(idx[p.Filename][p.Line+1], d)
			}
		}
	}
	return idx, malformed
}

// suppressed reports whether a directive for the named analyzer governs
// the diagnostic's line.
func (idx ignoreIndex) suppressed(fset *token.FileSet, d Diagnostic) bool {
	p := fset.Position(d.Pos)
	for _, dir := range idx[p.Filename][p.Line] {
		if dir.analyzer == d.Analyzer {
			return true
		}
	}
	return false
}
