#!/usr/bin/env bash
# Runs the per-query micro benchmarks and emits BENCH_<date>.json in the
# repo root, so successive perf PRs have a machine-readable trajectory to
# compare against. Existing files are never overwritten: a numeric suffix
# is appended when the day's file already exists. The JSON records the
# engine's execution batch size alongside the measurements, and the plan
# cache hit/miss counters reported by BenchmarkQueryPlanCache (plan_hits/op,
# plan_misses/op) so repeated-execution speedups stay attributable, and the
# per-binding plan-cache hit rate of the parameterized-query benchmark
# (param_hits_per_op, from BenchmarkQueryParam's param_hits/op metric) so
# the binds-vs-inlined-literals delta is machine-readable too. The streaming
# executor's counters (rows_streamed_per_op — rows moved between physical
# operators per execution — and peak_batch, the largest batch emitted) are
# recorded so accidental materialization in the operator tree shows up as a
# counter regression, not just a latency blip. BenchmarkQueryScaling's
# workers metric records the intra-query parallelism of each point in the
# Q1 scaling series, BenchmarkShardScaling's shards metric records the
# tenant-partitioned shard count behind each point of the Q1/Q6/Q22
# scatter/gather series (shards1 is the pass-through oracle on the same
# dataset), and BenchmarkMixedReadWrite contributes qps, p50_ms,
# p99_ms and writes_per_sec for the read-while-writing workload.
# BenchmarkServe contributes the same qps/p50_ms/p99_ms shape measured over
# the mtserve wire protocol (one series per optimization level, each
# execution a real TCP loopback round trip), so the cost of the network hop
# is on the same trajectory as the in-process numbers. "cpus"
# records how many CPUs the host actually had — a flat scaling series on a
# single-CPU host is expected, not a regression. BenchmarkQuerySpill
# contributes the memory-bound series (Q1/Q18 at unlimited, 1MB and 64KB
# statement budgets): spill_runs_per_op and spill_mb_per_op record how
# much of each statement overflowed to disk, and peak_mem_bytes the
# accounted high-water mark, so the cost of bounded-memory execution has
# a machine-readable trajectory too.
# Usage: scripts/bench.sh [benchtime, default 2x]
set -euo pipefail

cd "$(dirname "$0")/.."
benchtime="${1:-2x}"
stamp="$(date -u +%Y-%m-%d)"
out="BENCH_${stamp}.json"
n=2
while [ -e "$out" ]; do
	out="BENCH_${stamp}.${n}.json"
	n=$((n + 1))
done
batch_size="$(go run ./cmd/mtbench -print-batch-size)"
cpus="$(getconf _NPROCESSORS_ONLN 2>/dev/null || echo 1)"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run='^$' -bench='BenchmarkQuery|BenchmarkRewrite|BenchmarkTable3|BenchmarkMixedReadWrite|BenchmarkServe|BenchmarkShardScaling' \
	-benchtime="$benchtime" -benchmem | tee "$raw"

awk -v date="$stamp" -v batch="$batch_size" -v cpus="$cpus" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n  \"batch_size\": %s,\n  \"cpus\": %s,\n  \"benchmarks\": [\n", date, batch, cpus }
/^Benchmark/ {
	name = $1
	nsop = ""; bop = ""; allocs = ""; phits = ""; pmiss = ""; parhits = ""
	streamed = ""; peak = ""; workers = ""; qps = ""; p50 = ""; p99 = ""; wps = ""
	sruns = ""; smb = ""; pmem = ""; nshards = ""
	for (i = 2; i <= NF; i++) {
		if ($(i) == "ns/op")         nsop   = $(i - 1)
		if ($(i) == "B/op")          bop    = $(i - 1)
		if ($(i) == "allocs/op")     allocs = $(i - 1)
		if ($(i) == "plan_hits/op")  phits  = $(i - 1)
		if ($(i) == "plan_misses/op") pmiss = $(i - 1)
		if ($(i) == "param_hits/op") parhits = $(i - 1)
		if ($(i) == "rows_streamed/op") streamed = $(i - 1)
		if ($(i) == "peak_batch")    peak   = $(i - 1)
		if ($(i) == "workers")       workers = $(i - 1)
		if ($(i) == "shards")        nshards = $(i - 1)
		if ($(i) == "qps")           qps    = $(i - 1)
		if ($(i) == "p50_ms")        p50    = $(i - 1)
		if ($(i) == "p99_ms")        p99    = $(i - 1)
		if ($(i) == "writes_per_sec") wps   = $(i - 1)
		if ($(i) == "spill_runs/op") sruns  = $(i - 1)
		if ($(i) == "spill_mb/op")   smb    = $(i - 1)
		if ($(i) == "peak_mem_bytes") pmem  = $(i - 1)
	}
	if (nsop == "") next
	if (n++) printf ",\n"
	printf "    {\"name\": \"%s\", \"ns_per_op\": %s", name, nsop
	if (bop != "")    printf ", \"bytes_per_op\": %s", bop
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	if (phits != "")  printf ", \"plan_hits_per_op\": %s", phits
	if (pmiss != "")  printf ", \"plan_misses_per_op\": %s", pmiss
	if (parhits != "") printf ", \"param_hits_per_op\": %s", parhits
	if (streamed != "") printf ", \"rows_streamed_per_op\": %s", streamed
	if (peak != "")   printf ", \"peak_batch\": %s", peak
	if (workers != "") printf ", \"workers\": %s", workers
	if (nshards != "") printf ", \"shards\": %s", nshards
	if (qps != "")    printf ", \"qps\": %s", qps
	if (p50 != "")    printf ", \"p50_ms\": %s", p50
	if (p99 != "")    printf ", \"p99_ms\": %s", p99
	if (wps != "")    printf ", \"writes_per_sec\": %s", wps
	if (sruns != "")  printf ", \"spill_runs_per_op\": %s", sruns
	if (smb != "")    printf ", \"spill_mb_per_op\": %s", smb
	if (pmem != "")   printf ", \"peak_mem_bytes\": %s", pmem
	printf "}"
}
END { print "\n  ]\n}" }
' "$raw" > "$out"

echo "wrote $out"
