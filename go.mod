module mtbase

go 1.24
