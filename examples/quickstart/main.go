// The quickstart example walks through the paper's running example
// (Figures 2–3, §1–2): two companies share one ST-layout database; they
// store salaries in different currencies and use their own role catalogs.
// It shows why plain SQL is ambiguous for cross-tenant queries and how
// MTSQL resolves the ambiguity — tenant-aware joins, value conversion,
// client presentation and scoped grants.
package main

import (
	"fmt"
	"log"

	"mtbase/internal/engine"
	"mtbase/internal/middleware"
	"mtbase/internal/mtsql"
)

func main() {
	// 1. Stand up MTBase on an embedded DBMS. Tenant 99 is the data
	//    modeller (the SaaS provider); tenants 0 and 1 are companies.
	db := engine.Open(engine.ModePostgres)
	srv := middleware.NewServer(db, middleware.WithDataModeller(99))
	must(srv.Schema().Convs().Register(mtsql.ConvPair{
		Name:     "currency",
		ToFunc:   "currencyToUniversal",
		FromFunc: "currencyFromUniversal",
		Class:    mtsql.ClassLinear, // to(x) = c·x distributes over SUM/AVG
	}))

	admin, err := srv.Connect(99)
	must(err)
	for _, ddl := range []string{
		// Conversion machinery (Listings 6 and 7 of the paper).
		`CREATE TABLE Tenant (T_tenant_key INTEGER NOT NULL, T_currency_key INTEGER NOT NULL)`,
		`CREATE TABLE CurrencyTransform (CT_currency_key INTEGER NOT NULL,
			CT_to_universal DECIMAL(15,2) NOT NULL, CT_from_universal DECIMAL(15,2) NOT NULL)`,
		`CREATE FUNCTION currencyToUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
			AS 'SELECT CT_to_universal * $1 FROM Tenant, CurrencyTransform
			    WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
			LANGUAGE SQL IMMUTABLE`,
		`CREATE FUNCTION currencyFromUniversal (DECIMAL(15,2), INTEGER) RETURNS DECIMAL(15,2)
			AS 'SELECT CT_from_universal * $1 FROM Tenant, CurrencyTransform
			    WHERE T_tenant_key = $2 AND T_currency_key = CT_currency_key'
			LANGUAGE SQL IMMUTABLE`,
		// The running example's schema (Listing 3): table generality and
		// attribute comparability are MTSQL-specific DDL.
		`CREATE TABLE Regions (Re_reg_id INTEGER NOT NULL, Re_name VARCHAR(25) NOT NULL)`,
		`CREATE TABLE Roles SPECIFIC (
			R_role_id INTEGER NOT NULL SPECIFIC,
			R_name VARCHAR(25) NOT NULL COMPARABLE)`,
		`CREATE TABLE Employees SPECIFIC (
			E_emp_id INTEGER NOT NULL SPECIFIC,
			E_name VARCHAR(25) NOT NULL COMPARABLE,
			E_role_id INTEGER NOT NULL SPECIFIC,
			E_reg_id INTEGER NOT NULL COMPARABLE,
			E_salary DECIMAL(15,2) NOT NULL CONVERTIBLE @currencyToUniversal @currencyFromUniversal,
			E_age INTEGER NOT NULL COMPARABLE)`,
	} {
		_, err := admin.Exec(ddl)
		must(err)
	}
	must(srv.CreateTenant(0)) // uses USD (the universal format)
	must(srv.CreateTenant(1)) // uses EUR
	_, err = db.ExecScript(`
		INSERT INTO Tenant VALUES (0, 0), (1, 1);
		INSERT INTO CurrencyTransform VALUES (0, 1.0, 1.0), (1, 1.1, 0.9090909090909091);
		INSERT INTO Regions VALUES (0,'AFRICA'),(1,'ASIA'),(2,'AUSTRALIA'),(3,'EUROPE'),(4,'N-AMERICA'),(5,'S-AMERICA')`)
	must(err)

	// 2. Each company loads its own data through its own connection —
	//    the middleware stamps rows with the owner's ttid.
	alpha, err := srv.Connect(0)
	must(err)
	exec(alpha, `INSERT INTO Roles (R_role_id, R_name) VALUES (0, 'phD stud.'), (1, 'postdoc'), (2, 'professor')`)
	exec(alpha, `INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES
		(0, 'Patrick', 1, 3, 50000, 30), (1, 'John', 0, 3, 70000, 28), (2, 'Alice', 2, 3, 150000, 46)`)

	beta, err := srv.Connect(1)
	must(err)
	exec(beta, `INSERT INTO Roles (R_role_id, R_name) VALUES (0, 'intern'), (1, 'researcher'), (2, 'executive')`)
	exec(beta, `INSERT INTO Employees (E_emp_id, E_name, E_role_id, E_reg_id, E_salary, E_age) VALUES
		(0, 'Allan', 1, 2, 80000, 25), (1, 'Nancy', 2, 4, 200000, 72), (2, 'Ed', 0, 4, 1000000, 46)`)

	// 3. By default every client sees only her own data (D = {C}).
	fmt.Println("== Company 0, default scope (own data only):")
	show(alpha, `SELECT E_name, E_salary FROM Employees ORDER BY E_salary DESC`)

	// 4. Cross-tenant processing needs privileges and a scope.
	exec(beta, `GRANT READ ON Employees TO 0`)
	exec(beta, `GRANT READ ON Roles TO 0`)
	exec(alpha, `SET SCOPE = "IN ()"`) // empty IN list = all tenants

	// The role join stays inside each tenant: no "Ed the professor".
	fmt.Println("== Cross-tenant role join (tenant-aware automatically):")
	show(alpha, `SELECT E_name, R_name FROM Employees, Roles WHERE E_role_id = R_role_id ORDER BY E_name`)

	// Comparable attributes join across tenants: Alice and Ed are both 46.
	fmt.Println("== Same-age pairs across companies:")
	show(alpha, `SELECT e1.E_name, e2.E_name FROM Employees e1, Employees e2
		WHERE e1.E_age = e2.E_age AND e1.E_name < e2.E_name`)

	// 5. Client presentation: the same query, different currencies.
	fmt.Println("== Average salary in USD (asked by company 0):")
	show(alpha, `SELECT AVG(E_salary) AS avg_salary FROM Employees`)
	exec(beta, `SET SCOPE = "IN ()"`)
	exec(alpha, `GRANT READ ON Employees TO 1`)
	fmt.Println("== Average salary in EUR (asked by company 1):")
	show(beta, `SELECT AVG(E_salary) AS avg_salary FROM Employees`)

	// 6. Complex scopes select tenants by data: who pays anyone > 180K USD?
	exec(alpha, `SET SCOPE = "FROM Employees WHERE E_salary > 180000"`)
	fmt.Println("== Employees of tenants with any salary above 180K USD:")
	show(alpha, `SELECT E_name, E_salary FROM Employees ORDER BY E_salary DESC`)

	// 7. Interactive traffic varies literals per request. Prepared
	//    statements bind them (`?` placeholders), so one parameterized text
	//    — and one cached plan — serves every binding; Rows streams the
	//    result instead of materializing it up front.
	exec(alpha, `SET SCOPE = "IN ()"`)
	stmt, err := alpha.Prepare(`SELECT E_name, E_salary FROM Employees WHERE E_salary >= ? AND E_age < ?`)
	must(err)
	fmt.Println("== Prepared: earners above a bound threshold, under a bound age:")
	for _, bound := range []float64{60000, 140000} {
		rows, err := stmt.Query(bound, 50)
		must(err)
		for rows.Next() {
			var name string
			var salary float64
			must(rows.Scan(&name, &salary))
			fmt.Printf("threshold %.0f: %s %.2f\n", bound, name, salary)
		}
		must(rows.Err())
	}
	fmt.Println()
}

func exec(c *middleware.Conn, sql string) {
	if _, err := c.Exec(sql); err != nil {
		log.Fatalf("exec %q: %v", sql, err)
	}
}

func show(c *middleware.Conn, sql string) {
	res, err := c.Exec(sql)
	if err != nil {
		log.Fatalf("query %q: %v", sql, err)
	}
	for _, row := range res.Rows {
		for j, v := range row {
			if j > 0 {
				fmt.Print(" | ")
			}
			fmt.Print(v)
		}
		fmt.Println()
	}
	fmt.Println()
}

func must(err error) {
	if err != nil {
		log.Fatal(err)
	}
}
