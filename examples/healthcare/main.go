// The healthcare example plays out the paper's §1 motivating scenario and
// §6.2's Scenario 2: many providers (hospitals, practices) of wildly
// different sizes share one SaaS database (zipfian shares), and a research
// institution queries the entire dataset in-situ — no ETL, no staleness —
// while every result arrives in the researcher's own formats.
//
// MT-H stands in for the medical schema (the paper itself evaluates the
// scenario on MT-H): orders ≈ treatment cases, lineitems ≈ procedures,
// customers ≈ patients; monetary attributes are per-provider currencies.
package main

import (
	"fmt"
	"log"
	"strings"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqltypes"
)

func main() {
	// A few hundred providers with zipf-distributed data volumes: a few
	// university hospitals own most records, the long tail are practices.
	cfg := mth.Config{SF: 0.005, Tenants: 200, Dist: mth.Zipf, Seed: 2026, Mode: engine.ModePostgres}
	fmt.Printf("loading %d-provider database (zipf shares, sf=%g)...\n", cfg.Tenants, cfg.SF)
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Show the skew.
	db := inst.Srv.DB()
	counts := make(map[int64]int)
	for _, row := range db.Table("lineitem").Heap() {
		counts[row[0].I]++
	}
	fmt.Printf("procedure records: provider 1 holds %d, provider 200 holds %d\n\n",
		counts[1], counts[200])

	// Every provider consents to research access (a GRANT per provider —
	// the paper's answer to data-sharing governance).
	const researcher = 1
	if err := inst.GrantReadTo(researcher); err != nil {
		log.Fatal(err)
	}
	conn, err := inst.Connect(researcher, "IN ()") // query all providers
	if err != nil {
		log.Fatal(err)
	}
	conn.SetOptLevel(optimizer.O4)

	// Research query 1: per-quarter case volume and total cost across the
	// whole population — costs converted to the researcher's currency.
	fmt.Println("== Quarterly case volume and spend (all providers):")
	start := time.Now()
	res, err := conn.Exec(`
		SELECT EXTRACT(YEAR FROM o_orderdate) AS yr, COUNT(*) AS cases,
		       SUM(o_totalprice) AS total_cost
		FROM orders
		WHERE o_orderdate >= DATE '1995-01-01' AND o_orderdate < DATE '1998-01-01'
		GROUP BY yr ORDER BY yr`)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res.Cols, res.Rows, 10)
	fmt.Printf("   (%.0f ms across %d providers)\n\n", time.Since(start).Seconds()*1000, cfg.Tenants)

	// Research query 2: treatment-intensity distribution — how many cases
	// have how many procedures (the Q13 shape, tenant-aware outer join).
	fmt.Println("== Procedures-per-case distribution:")
	res, err = conn.Exec(`
		SELECT c_count, COUNT(*) AS cases FROM (
			SELECT o_orderkey AS ok, COUNT(l_linenumber) AS c_count
			FROM orders LEFT OUTER JOIN lineitem ON l_orderkey = o_orderkey
			GROUP BY o_orderkey
		) AS per_case
		GROUP BY c_count ORDER BY c_count`)
	if err != nil {
		log.Fatal(err)
	}
	printRows(res.Cols, res.Rows, 10)
	fmt.Println()

	// Research query 3: cohort selection with a complex scope — only
	// providers that treated at least one high-cost case participate.
	if _, err := conn.Exec(`SET SCOPE = "FROM orders WHERE o_totalprice > 40000"`); err != nil {
		log.Fatal(err)
	}
	res, err = conn.Exec(`SELECT COUNT(*) AS high_cost_providers_cases, AVG(o_totalprice) AS avg_cost FROM orders`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("== Cases at providers with any case above 40K (researcher currency):")
	printRows(res.Cols, res.Rows, 5)

	// The same analysis is wrong without tenant awareness: compare the
	// optimization levels to see the middleware is not the bottleneck.
	if _, err := conn.Exec(`SET SCOPE = "IN ()"`); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n== Middleware overhead check (Q6 revenue forecast):")
	q, err := mth.QueryByID(cfg.SF, 6)
	if err != nil {
		log.Fatal(err)
	}
	for _, level := range []optimizer.Level{optimizer.Canonical, optimizer.O4} {
		conn.SetOptLevel(level)
		start := time.Now()
		if _, err := mth.RunOnMT(conn, q); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %-9s %6.1f ms\n", level, time.Since(start).Seconds()*1000)
	}
}

func printRows(cols []string, rows [][]sqltypes.Value, limit int) {
	fmt.Println("   " + strings.Join(cols, " | "))
	for i, row := range rows {
		if i >= limit {
			fmt.Printf("   ... (%d rows)\n", len(rows))
			return
		}
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = v.String()
		}
		fmt.Println("   " + strings.Join(parts, " | "))
	}
}
