// The alliance example is the paper's §6.2 Scenario 1: a business
// alliance of ten small-to-mid-sized companies shares one MT-H database
// with roughly equal data volumes (uniform shares). One member analyses
// the joint order book; the example shows how each optimization pass of
// §4 changes the rewritten SQL and the measured response time — a
// miniature, self-verifying Table 5.
package main

import (
	"fmt"
	"log"
	"time"

	"mtbase/internal/engine"
	"mtbase/internal/mth"
	"mtbase/internal/optimizer"
	"mtbase/internal/sqltypes"
)

func main() {
	cfg := mth.Config{SF: 0.01, Tenants: 10, Dist: mth.Uniform, Seed: 42, Mode: engine.ModePostgres}
	fmt.Printf("loading %d-company alliance database (sf=%g)...\n\n", cfg.Tenants, cfg.SF)
	inst, err := mth.BuildMT(cfg)
	if err != nil {
		log.Fatal(err)
	}
	if err := inst.GrantReadTo(1); err != nil {
		log.Fatal(err)
	}
	conn, err := inst.Connect(1, "IN ()")
	if err != nil {
		log.Fatal(err)
	}

	// Show what the middleware actually ships to the DBMS at two levels.
	const monthlyRevenue = `
		SELECT SUM(l_extendedprice * (1 - l_discount)) AS revenue
		FROM lineitem
		WHERE l_shipdate >= DATE '1996-01-01' AND l_shipdate < DATE '1996-02-01'`
	fmt.Println("== Rewritten SQL at level canonical:")
	conn.SetOptLevel(optimizer.Canonical)
	rw, err := conn.RewriteSQL(monthlyRevenue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", rw.String())
	fmt.Println("\n== Rewritten SQL at level o3 (aggregation distribution):")
	conn.SetOptLevel(optimizer.O3)
	rw, err = conn.RewriteSQL(monthlyRevenue)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("  ", rw.String())

	// Run the conversion-heavy queries of §6.3 at every level; results
	// must agree, times should not.
	fmt.Println("\n== Response times per optimization level (alliance-wide):")
	fmt.Printf("%-10s %12s %12s %12s\n", "level", "Q1 pricing", "Q6 forecast", "Q22 sales")
	var reference [3]string
	for _, level := range []optimizer.Level{
		optimizer.Canonical, optimizer.O1, optimizer.O2,
		optimizer.O3, optimizer.O4, optimizer.InlOnly,
	} {
		conn.SetOptLevel(level)
		var cells [3]string
		for i, id := range []int{1, 6, 22} {
			q, err := mth.QueryByID(cfg.SF, id)
			if err != nil {
				log.Fatal(err)
			}
			start := time.Now()
			res, err := mth.RunOnMT(conn, q)
			if err != nil {
				log.Fatal(err)
			}
			cells[i] = fmt.Sprintf("%.0f ms", time.Since(start).Seconds()*1000)
			fp := fingerprint(resRows(res))
			if level == optimizer.Canonical {
				reference[i] = fp
			} else if fp != reference[i] {
				log.Fatalf("Q%d at %s diverges from canonical!", id, level)
			}
		}
		fmt.Printf("%-10s %12s %12s %12s\n", level, cells[0], cells[1], cells[2])
	}
	fmt.Println("\nall levels returned identical results (validated against canonical)")
}

func resRows(res *engine.Result) [][]string {
	out := make([][]string, len(res.Rows))
	for i, row := range res.Rows {
		out[i] = make([]string, len(row))
		for j, v := range row {
			if v.K == sqltypes.KindFloat { // absorb float reassociation noise
				out[i][j] = fmt.Sprintf("%.1f", v.F)
			} else {
				out[i][j] = v.String()
			}
		}
	}
	return out
}

func fingerprint(rows [][]string) string {
	s := ""
	for _, row := range rows {
		for _, c := range row {
			s += c + "|"
		}
		s += "\n"
	}
	return s
}
