// Package mtbase is a from-scratch Go reproduction of "MTBase: Optimizing
// Cross-Tenant Database Queries" (Braun, Marroquín, Tsay, Kossmann —
// EDBT 2018, arXiv:1703.04290).
//
// The system lives in internal/ packages:
//
//   - sqltypes, sqllex, sqlast, sqlparse — the SQL/MTSQL frontend
//   - engine — the substrate in-memory DBMS (PostgreSQL / "System C" roles).
//     Queries execute as a tree of pull-based physical operators
//     (engine/operator.go) — scan, filter, project, hash join, group,
//     sort, distinct, limit — exchanging fixed-size batches with selection
//     vectors (engine/batch.go); only the pipeline breakers (join builds,
//     group buckets, sort buffers) materialize state, so memory is bounded
//     by batch size plus breaker state rather than intermediate result
//     size (ADR-004 in DESIGN.md). Expressions are lowered into vectorized
//     kernels looping over those vectors (engine/vector.go) with
//     row-compiled closures (engine/compile.go) as the lifted fallback,
//     ORDER BY sorts over precomputed key columns, conversion-UDF bodies
//     are planned once per cached statement plan with their tenant-keyed
//     meta-table lookups cached, and pure conversion results are cached
//     per statement; whole statement plans are cached on the DB keyed by
//     SQL text and invalidated by referenced-table versions and DDL
//     (engine/plan.go); the tree-walking interpreter remains the
//     row-at-a-time fallback behind the same kernels
//     (DB.SetCompileExprs(false) selects it), and the classic
//     materialize-everything executor is retained as the differential
//     oracle (DB.SetStreamExec(false)). The client API is Prepare → Stmt →
//     Query(args...) → Rows (engine/stmt.go, engine/rows.go): statements
//     carry ? / $n bind parameters resolved per execution (one cached plan
//     serves every binding), Rows pulls the operator tree batch-at-a-time
//     for every query shape — joins, grouping, ordering, DISTINCT,
//     subqueries — and every entry point has a Context variant polled for
//     cancellation inside every operator (ADR-003/ADR-004 in DESIGN.md).
//     Statements read immutable copy-on-write snapshots pinned at exec
//     creation — writers publish new snapshots under DB.mu, so readers,
//     open cursors and writers overlap without blocking — and large scans,
//     aggregate columns, join builds and sorts fan out morsel-parallel
//     across a worker pool (DB.SetParallelism; results are byte-identical
//     at every setting, parallelism 1 being the serial differential
//     oracle; ADR-005 in DESIGN.md). DB.SetMemoryLimit caps per-statement
//     working memory (0 = unlimited default): over budget, sorts run as
//     external merge sorts, group-bys fall back to sort-based grouping,
//     DISTINCT spills its key set and hash joins Grace-partition — all to
//     temp files under DB.SetSpillDir, removed at statement end even on
//     error — with results byte-identical to the unlimited path and
//     Stats.SpillRuns/SpillBytes/PeakMemBytes reporting what spilled
//     (MTBASE_TEST_MEMLIMIT applies the cap process-wide in tests;
//     ADR-006 in DESIGN.md).
//   - mtsql — MTSQL semantics: generality, comparability, conversion algebra
//   - rewrite — the canonical MTSQL→SQL rewrite algorithm (§3)
//   - optimizer — the o1–o4 / inl-only optimization passes (§4)
//   - middleware — MTBase proper: sessions, scopes, privileges (Figure 4);
//     Conn.Prepare gives prepared MTSQL statements whose rewrite is cached
//     against the parameterized text and shared across bindings
//   - mth — the MT-H benchmark: dbgen, 22 queries, validation (§5)
//   - bench — the experiment driver for every table and figure (§6), plus
//     the mixed read/write throughput mode (mtbench -mixed) and the wire
//     throughput mode (mtbench -serve)
//   - lint — six project-specific static analyzers mechanizing the
//     engine's concurrency, determinism and resource invariants; run
//     `go run ./cmd/mtlint ./...` next to tier-1 verification (ADR-007
//     in DESIGN.md)
//   - shard — tenant-partitioned scale-out (ADR-009 in DESIGN.md): N
//     independent engine+middleware shards plus a coordinator replica
//     behind the same Conn/Prepare/Stmt/Rows surface. The rewrite's
//     privilege-pruned tenant set D′ routes every statement: one shard
//     for single-tenant work, deterministic scatter/gather for
//     cross-tenant work (ordered k-way merge under ORDER BY,
//     partial-aggregation pushdown with a coordinator fold, repartition
//     fallback for shapes the pinned-query classifier cannot prove
//     exact), byte-identical to the unsharded instance at every
//     optimization level. cmd/mtserve -shards N serves a sharded
//     instance; cmd/mtsh -shards N explores one (\shards, \stats).
//   - wire, server, wal, client — the network service (ADR-008 in
//     DESIGN.md): cmd/mtserve serves an instance over TCP with
//     per-tenant sessions bound in the protocol handshake, streaming row
//     batches, per-tenant admission control, graceful drain, and — with
//     -data — a logical write-ahead log with group commit, copy-on-write
//     heap snapshots and online backup that recovers the exact
//     acknowledged state after a crash (execution determinism makes
//     statement replay byte-exact). internal/client mirrors the
//     middleware Conn/Stmt/Rows API over the wire; cmd/mtsh -connect
//     gives an interactive shell against a running server.
//
// Quickstart (in-process):
//
//	inst, _ := mth.BuildMT(mth.Config{SF: 0.01, Tenants: 5, Dist: mth.Uniform, Seed: 42})
//	conn, _ := inst.Srv.Connect(1)          // session bound to tenant 1
//	conn.Exec(`SET SCOPE = "IN ()"`)        // own data only
//	res, _ := conn.Query(`SELECT COUNT(*) FROM customer`)
//
// Quickstart (served): `go run ./cmd/mtserve -sf 0.01 -tenants 5`, then
//
//	conn, _ := client.Dial("localhost:7687", 1, "o4")
//	conn.Exec(`SET SCOPE = "IN ()"`)
//	res, _ := conn.Query(`SELECT COUNT(*) FROM customer`)
//
// See README.md for a quickstart, DESIGN.md for the system inventory and
// EXPERIMENTS.md for paper-vs-measured results. The benchmarks in
// bench_test.go regenerate each table/figure at laptop scale.
package mtbase
